"""The Ped session server: many named sessions over one protocol.

A :class:`PedServer` hosts any number of concurrent, named
:class:`~repro.editor.session.PedSession` instances and exposes the full
editor surface — open/edit/assert/mark/reclassify/transform/query — over
a JSON-lines protocol carried on stdio (``python -m repro serve
--stdio``) or TCP (``--port``).  All sessions share the server's worker
pool and persistent store, so a server with ``--jobs``/``--cache-dir``
gives every client parallel analysis and warm starts for free.

**Protocol.**  One JSON object per line, both directions.  Requests are
``{"id": ..., "op": ..., "session": ..., ...params}``; replies are
``{"id": ..., "ok": true, "result": ...}`` or ``{"id": ..., "ok": false,
"error": {"type": ..., "message": ...}}``.  Replies may arrive out of
request order (requests run concurrently); the ``id`` is the client's
correlation key.  Error types: ``bad-request``, ``unknown-op``,
``unknown-session``, ``session-exists``, ``ped-error`` (a user-level
editor error — the session is intact), ``timeout``, ``cancelled``,
``shutting-down`` and ``internal``.

**Concurrency.**  Each request runs on a bounded worker-thread pool;
per-session locks serialize operations on the same session while
different sessions proceed in parallel.  A request may carry ``timeout``
(seconds): if the deadline passes the client gets a ``timeout`` error
immediately and the late result is discarded.  ``{"op": "cancel",
"target": <id>}`` cancels a queued request outright and flags a running
one; lock waits and the ``sleep`` test op poll the flag cooperatively.

Every request is timed into the server's stats as a ``req.<op>`` stage,
next to the shared pool/disk counters — ``{"op": "stats"}`` returns the
server-wide snapshot, ``{"op": "stats", "session": s}`` one session's.
"""

from __future__ import annotations

import json
import logging
import socketserver
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..dependence.hierarchy import SharedPairMemo
from ..editor.session import PedError, PedSession
from ..incremental.stats import EngineStats
from ..interproc.program import FeatureSet
from .persist import PersistentStore
from .pool import make_pool

log = logging.getLogger(__name__)

#: Protocol/feature revision, echoed by ``ping``.
PROTOCOL_VERSION = 1


class _Cancelled(Exception):
    """Raised inside a request body when its cancel flag is set."""


@dataclass
class _Managed:
    """One hosted session plus the lock serializing its operations."""

    session: PedSession
    lock: threading.Lock


class PedServer:
    """The protocol-independent core: sessions, dispatch, cancellation."""

    def __init__(
        self,
        features: Optional[FeatureSet] = None,
        jobs: int = 1,
        cache_dir=None,
        max_workers: int = 8,
        stats: Optional[EngineStats] = None,
    ) -> None:
        self.features = features
        self.stats = stats or EngineStats()
        self.pool = make_pool(jobs, stats=self.stats)
        self.store = (
            PersistentStore.at(cache_dir, stats=self.stats)
            if cache_dir
            else None
        )
        #: One pair-test memo for the whole server: every session's
        #: engine reads and extends it, so sessions warm each other.
        self.shared_memo = SharedPairMemo()
        self.sessions: Dict[str, _Managed] = {}
        self._sessions_lock = threading.Lock()
        self._work = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="ped-req"
        )
        self._cancelled: Set[object] = set()
        self._cancel_lock = threading.Lock()
        self.shutdown_event = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self.shutdown_event.set()
        self._work.shutdown(wait=False, cancel_futures=True)
        self.pool.close()

    # ------------------------------------------------------------------
    # cancellation registry
    # ------------------------------------------------------------------

    def request_cancel(self, target) -> None:
        with self._cancel_lock:
            self._cancelled.add(target)

    def _check_cancel(self, rid) -> None:
        if rid is None:
            return
        with self._cancel_lock:
            if rid in self._cancelled:
                self._cancelled.discard(rid)
                raise _Cancelled()

    def _clear_cancel(self, rid) -> None:
        with self._cancel_lock:
            self._cancelled.discard(rid)

    # ------------------------------------------------------------------
    # session helpers
    # ------------------------------------------------------------------

    def _managed(self, req: Dict) -> _Managed:
        name = req.get("session")
        if not isinstance(name, str) or not name:
            raise _BadRequest("request needs a 'session' name")
        with self._sessions_lock:
            managed = self.sessions.get(name)
        if managed is None:
            raise _UnknownSession(f"no session named {name!r}")
        return managed

    def _locked(self, managed: _Managed, rid):
        """Acquire the session lock, polling the cancel flag meanwhile."""

        while not managed.lock.acquire(timeout=0.05):
            self._check_cancel(rid)
        return managed

    def _session_engine(self):
        """A per-session engine sharing the server's pool and store.

        Each session gets its own :class:`EngineStats` (so per-session
        stage numbers stay meaningful) while pool and disk counters
        accumulate on the shared server stats they were created with.
        """

        from ..incremental.engine import AnalysisEngine

        return AnalysisEngine(
            features=self.features,
            stats=EngineStats(),
            pool=self.pool,
            store=self.store,
            shared_memo=self.shared_memo,
        )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def execute(self, req: Dict) -> Dict:
        """Run one request to a reply dict (the transport writes it)."""

        rid = req.get("id")
        op = req.get("op")
        try:
            if not isinstance(op, str):
                raise _BadRequest("request needs an 'op' string")
            handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
            if handler is None:
                return _error(rid, "unknown-op", f"unknown op {op!r}")
            self._check_cancel(rid)
            with self.stats.timer(f"req.{op}"):
                result = handler(req)
            return {"id": rid, "ok": True, "result": result}
        except _BadRequest as exc:
            return _error(rid, "bad-request", str(exc))
        except _UnknownSession as exc:
            return _error(rid, "unknown-session", str(exc))
        except _SessionExists as exc:
            return _error(rid, "session-exists", str(exc))
        except _Cancelled:
            return _error(rid, "cancelled", "request cancelled")
        except PedError as exc:
            return _error(rid, "ped-error", str(exc))
        except Exception as exc:  # noqa: BLE001 — must answer the client
            log.exception("internal error handling %r", op)
            return _error(rid, "internal", f"{type(exc).__name__}: {exc}")
        finally:
            self._clear_cancel(rid)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def _op_ping(self, req: Dict) -> Dict:
        return {
            "pong": True,
            "protocol": PROTOCOL_VERSION,
            "sessions": len(self.sessions),
        }

    def _op_open(self, req: Dict) -> Dict:
        name = req.get("session")
        source = req.get("source")
        if not isinstance(name, str) or not name:
            raise _BadRequest("open needs a 'session' name")
        if not isinstance(source, str):
            raise _BadRequest("open needs 'source' text")
        with self._sessions_lock:
            if name in self.sessions and not req.get("replace"):
                raise _SessionExists(f"session {name!r} already open")
        # Building the session (a full analysis) happens outside the
        # registry lock so other sessions keep serving.
        session = PedSession(source, engine=self._session_engine())
        with self._sessions_lock:
            self.sessions[name] = _Managed(session, threading.Lock())
        return {
            "session": name,
            "units": [u.name for u in session.sf.units],
        }

    def _op_close(self, req: Dict) -> Dict:
        name = req.get("session")
        with self._sessions_lock:
            managed = self.sessions.pop(name, None)
        if managed is None:
            raise _UnknownSession(f"no session named {name!r}")
        # The engine shares the server's pool/store: nothing to release.
        return {"closed": name}

    def _op_list(self, req: Dict) -> Dict:
        with self._sessions_lock:
            names = sorted(self.sessions)
        return {"sessions": names}

    def _op_edit(self, req: Dict) -> Dict:
        managed = self._managed(req)
        rid = req.get("id")
        self._locked(managed, rid)
        try:
            self._check_cancel(rid)
            message = managed.session.edit(
                int(req["start"]), int(req["end"]), req.get("text", "")
            )
        except KeyError as exc:
            raise _BadRequest(f"edit needs {exc.args[0]!r}")
        finally:
            managed.lock.release()
        return {"message": message}

    def _op_assert(self, req: Dict) -> Dict:
        managed = self._managed(req)
        text = req.get("text")
        if not isinstance(text, str):
            raise _BadRequest("assert needs assertion 'text'")
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            message = managed.session.add_assertion(text)
        finally:
            managed.lock.release()
        return {"message": message}

    def _op_mark(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            message = managed.session.mark_dependence(
                int(req["dep"]), req["marking"]
            )
        except KeyError as exc:
            raise _BadRequest(f"mark needs {exc.args[0]!r}")
        finally:
            managed.lock.release()
        return {"message": message}

    def _op_reclassify(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            if req.get("loop") is not None:
                managed.session.select_loop(int(req["loop"]))
            message = managed.session.reclassify(
                req["var"], req["as"]
            )
        except KeyError as exc:
            raise _BadRequest(f"reclassify needs {exc.args[0]!r}")
        finally:
            managed.lock.release()
        return {"message": message}

    def _op_select(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            if req.get("loop") is not None:
                managed.session.select_loop(int(req["loop"]))
        finally:
            managed.lock.release()
        return {
            "unit": managed.session.current_unit,
            "loop": managed.session.loop_index,
        }

    def _op_loops(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            ua = managed.session.unit_analysis
            loops = []
            for idx, nest in enumerate(ua.loops):
                info = ua.info_for(nest.loop)
                loops.append(
                    {
                        "index": idx,
                        "var": nest.loop.var,
                        "line": nest.loop.line,
                        "depth": nest.depth,
                        "parallelizable": info.parallelizable,
                        "obstacles": list(info.obstacles),
                    }
                )
        finally:
            managed.lock.release()
        return {"unit": managed.session.current_unit, "loops": loops}

    def _op_deps(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            if req.get("loop") is not None:
                managed.session.select_loop(int(req["loop"]))
            deps = [
                {
                    "id": d.id,
                    "kind": d.kind,
                    "var": d.var,
                    "vector": d.vector_str(),
                    "level": d.level,
                    "marking": d.marking,
                    "src_line": d.src_line,
                    "dst_line": d.dst_line,
                }
                for d in managed.session.dependences(
                    unfiltered=bool(req.get("unfiltered"))
                )
            ]
        finally:
            managed.lock.release()
        return {"unit": managed.session.current_unit, "deps": deps}

    def _op_source(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            return {"source": managed.session.source}
        finally:
            managed.lock.release()

    def _op_diagnose(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            if req.get("loop") is not None:
                managed.session.select_loop(int(req["loop"]))
            advice = managed.session.diagnose(
                req["transform"], **(req.get("args") or {})
            )
        except KeyError as exc:
            raise _BadRequest(f"diagnose needs {exc.args[0]!r}")
        finally:
            managed.lock.release()
        return {
            "applicable": advice.applicable,
            "safe": advice.safe,
            "profitable": advice.profitable,
            "reasons": list(advice.reasons),
        }

    def _op_apply(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            if req.get("loop") is not None:
                managed.session.select_loop(int(req["loop"]))
            message = managed.session.apply(
                req["transform"], **(req.get("args") or {})
            )
        except KeyError as exc:
            raise _BadRequest(f"apply needs {exc.args[0]!r}")
        finally:
            managed.lock.release()
        return {"message": message}

    def _op_undo(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            managed.session.undo()
        finally:
            managed.lock.release()
        return {"message": "undone"}

    def _op_redo(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            managed.session.redo()
        finally:
            managed.lock.release()
        return {"message": "redone"}

    def _op_parallel_summary(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            rows = managed.session.parallel_summary()
        finally:
            managed.lock.release()
        return {
            "units": [
                {"unit": name, "parallel": par, "loops": total}
                for name, par, total in rows
            ]
        }

    def _op_stats(self, req: Dict) -> Dict:
        if req.get("session"):
            managed = self._managed(req)
            return managed.session.engine.stats.snapshot()
        # Server-wide memo totals live on the shared memo itself (each
        # session engine publishes only into its own stats).
        self.stats.counters["memo.shared_hits"] = self.shared_memo.hits
        self.stats.counters["memo.shared_misses"] = self.shared_memo.misses
        self.stats.counters["memo.entries"] = len(self.shared_memo.entries)
        return self.stats.snapshot()

    def _op_sleep(self, req: Dict) -> Dict:
        """Test/diagnostic op: a long, cooperatively-cancellable wait."""

        deadline = time.monotonic() + float(req.get("seconds", 1.0))
        rid = req.get("id")
        while time.monotonic() < deadline:
            self._check_cancel(rid)
            time.sleep(0.02)
        return {"slept": float(req.get("seconds", 1.0))}

    def _op_shutdown(self, req: Dict) -> Dict:
        self.shutdown_event.set()
        return {"shutting_down": True}


# ----------------------------------------------------------------------
# protocol plumbing
# ----------------------------------------------------------------------


class _BadRequest(Exception):
    pass


class _UnknownSession(Exception):
    pass


class _SessionExists(Exception):
    pass


def _error(rid, etype: str, message: str) -> Dict:
    return {
        "id": rid,
        "ok": False,
        "error": {"type": etype, "message": message},
    }


class _Connection:
    """One client: reads request lines, writes replies as they finish.

    Requests are handed to the server's worker pool so one slow request
    (or one slow *session* — sessions serialize internally) never blocks
    the rest of the stream; a per-connection write lock keeps the
    interleaved reply lines whole.  ``cancel`` is handled inline on the
    reader thread — it must work precisely when the workers are busy.
    """

    def __init__(self, server: PedServer, rfile, wfile) -> None:
        self.server = server
        self.rfile = rfile
        self.wfile = wfile
        self._write_lock = threading.Lock()

    def _write(self, reply: Dict) -> None:
        line = json.dumps(reply, sort_keys=True)
        with self._write_lock:
            try:
                self.wfile.write(line + "\n")
                self.wfile.flush()
            except (BrokenPipeError, ValueError, OSError):
                pass  # client went away; nothing to tell it

    def _finish(self, rid, reply: Dict, timed_out: threading.Event) -> None:
        if not timed_out.is_set():
            self._write(reply)

    def _run_request(self, req: Dict) -> None:
        rid = req.get("id")
        timed_out = threading.Event()
        future = self.server._work.submit(self.server.execute, req)
        future.add_done_callback(
            lambda f: self._finish(
                rid, f.result() if not f.cancelled() else _error(
                    rid, "cancelled", "request cancelled"
                ), timed_out
            )
        )
        timeout = req.get("timeout")
        if timeout is not None:
            def _watchdog():
                try:
                    future.result(timeout=float(timeout))
                except Exception:  # noqa: BLE001 — includes TimeoutError
                    if not future.done():
                        # Deadline passed: answer now, flag the body so a
                        # cooperative op stops, and drop the late result.
                        timed_out.set()
                        self.server.request_cancel(rid)
                        self._write(
                            _error(
                                rid,
                                "timeout",
                                f"no result within {timeout}s",
                            )
                        )

            threading.Thread(target=_watchdog, daemon=True).start()

    def handle_line(self, line: str) -> bool:
        """Process one request line; False once the stream should end."""

        line = line.strip()
        if not line:
            return True
        try:
            req = json.loads(line)
            if not isinstance(req, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            self._write(_error(None, "bad-request", f"bad JSON: {exc}"))
            return True
        if self.server.shutdown_event.is_set():
            self._write(
                _error(req.get("id"), "shutting-down", "server stopping")
            )
            return False
        if req.get("op") == "cancel":
            self.server.request_cancel(req.get("target"))
            self._write(
                {
                    "id": req.get("id"),
                    "ok": True,
                    "result": {"cancelled": req.get("target")},
                }
            )
            return True
        if req.get("op") == "shutdown":
            # Inline: the reply must reach the client before this
            # connection (and then the server) winds down.
            self._write(self.server.execute(req))
            return False
        self._run_request(req)
        return True

    def run(self) -> None:
        for line in self.rfile:
            if not self.handle_line(line):
                break
            if self.server.shutdown_event.is_set():
                break


def serve_stdio(server: PedServer, rfile=None, wfile=None) -> None:
    """Serve one client over stdio (used by ``ped serve --stdio``)."""

    _Connection(
        server, rfile or sys.stdin, wfile or sys.stdout
    ).run()


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    ped: PedServer


class _TCPHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one thread per client connection
        server: _ThreadingTCPServer = self.server  # type: ignore[assignment]
        rfile = self.rfile
        wfile = _TextWriter(self.wfile)
        _Connection(server.ped, _TextReader(rfile), wfile).run()
        if server.ped.shutdown_event.is_set():
            threading.Thread(target=server.shutdown, daemon=True).start()


class _TextReader:
    """Line iterator decoding a binary stream (socket rfile) as UTF-8."""

    def __init__(self, raw) -> None:
        self.raw = raw

    def __iter__(self):
        for line in self.raw:
            yield line.decode("utf-8", errors="replace")


class _TextWriter:
    def __init__(self, raw) -> None:
        self.raw = raw

    def write(self, text: str) -> None:
        self.raw.write(text.encode("utf-8"))

    def flush(self) -> None:
        self.raw.flush()


def serve_tcp(
    server: PedServer, host: str = "127.0.0.1", port: int = 0
) -> _ThreadingTCPServer:
    """Bind a threaded TCP front end; the caller runs ``serve_forever``.

    Returns the bound socketserver (``.server_address`` has the actual
    port when 0 was requested — handy for tests).
    """

    tcp = _ThreadingTCPServer((host, port), _TCPHandler)
    tcp.ped = server
    return tcp
