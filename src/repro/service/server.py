"""Service transports: stdio and TCP front ends for the session host.

The service stack is split in three (see the ISSUE-5 refactor):

* :mod:`repro.service.protocol` — the wire grammar: request framing,
  reply/event envelopes, sequence ids, error types.
* :mod:`repro.service.session_host` — :class:`PedServer`, the
  transport-agnostic core hosting the named sessions.
* this module — the byte-moving edge: a :class:`_Connection` per client
  that reads request lines, hands them to the host's worker pool and
  writes back whatever envelopes result.

Per connection, a :class:`~repro.service.protocol.Sequencer` stamps
every outgoing envelope with a monotonic ``seq`` *at write time, under
the write lock*, so the client can assert a total order over the
interleaved stream regardless of which worker thread produced each
line.  A streaming request's events are emitted synchronously by its
handler thread and its terminal reply written after the handler
returns, so events always carry smaller ``seq`` values than the reply.

Each connection also registers itself as a broadcast listener with the
host: ``invalidation`` events (an edit in one session dirtied units
another session holds) are fanned out to every connected client as
events with ``"id": null``.

Framing errors — unparsable JSON, a non-object request, a line over the
request size limit — are answered through the same structured error
envelope as handler errors (``bad-request`` / ``payload-too-large``),
never by dropping the line or the connection.

Connections start on JSON lines; a client on a byte-capable transport
(TCP, real stdio) may negotiate the v5 binary frame format with an
inline ``frames`` request, and on top of that the v6 ``compress`` rung
— adaptive zlib frames plus flush-timer coalescing of progress-event
bursts into multi-record frames — see the
:mod:`repro.service.protocol` docstring for the wire layout.  Each
switch is atomic under the write lock, and the frame read loop
continues on the same buffered stream.  Wire traffic lands in the
host's stats as ``net.bytes_in`` / ``net.bytes_out`` (plus
``net.bytes_out_raw``, ``net.frames_compressed``,
``net.coalesced_events`` and ``net.flushes``) for every connection,
compressed or not.

For back compatibility this module re-exports the host's public names
(``PedServer``, ``PROTOCOL_VERSION``), so pre-split imports keep
working.
"""

from __future__ import annotations

import logging
import socketserver
import sys
import threading
from typing import Dict

from . import protocol
from .protocol import PROTOCOL_VERSION, ProtocolError
from .session_host import PedServer

__all__ = [
    "PedServer",
    "PROTOCOL_VERSION",
    "serve_stdio",
    "serve_tcp",
]

log = logging.getLogger(__name__)


class _Connection:
    """One client: reads request lines, writes envelopes as they come.

    Requests are handed to the server's worker pool so one slow request
    (or one slow *session* — sessions serialize internally) never blocks
    the rest of the stream; a per-connection write lock keeps the
    interleaved envelope lines whole and orders the ``seq`` stamps.
    ``cancel`` is handled inline on the reader thread — it must work
    precisely when the workers are busy.
    """

    def __init__(self, server: PedServer, rfile, wfile) -> None:
        self.server = server
        self.rfile = rfile
        self.wfile = wfile
        self._write_lock = threading.Lock()
        self._seq = protocol.Sequencer()
        self._listener_token = None
        #: Binary framing state.  ``_binary`` flips inside the write
        #: lock when the ``frames`` negotiation reply goes out, so no
        #: envelope can straddle the JSON-lines → frames switch;
        #: ``_compress`` flips the same way on the second rung.
        self._binary = False
        self._compress = False
        self._encoder = None
        self._reply_keys: Dict[object, str] = {}
        #: Coalescing state (compress mode only): progress events wait
        #: here *unstamped* — ``seq`` is assigned at flush time, under
        #: the write lock, so stamps still equal wire order.
        self._pending_events: list = []
        self._flush_timer: "threading.Timer | None" = None
        self._stats = getattr(server, "stats", None)
        self._acct = [0, 0, 0, 0]  # wire, raw, compressed, coalesced

    # -- writing -------------------------------------------------------

    def _bump(self, name: str, n: int = 1) -> None:
        if self._stats is not None and n:
            self._stats.bump(name, n)

    def _account_frames(self) -> None:
        """Bump ``net.*`` by the encoder's movement since last write."""

        enc = self._encoder
        now = [
            enc.bytes_wire,
            enc.bytes_raw,
            enc.frames_compressed,
            enc.coalesced_events,
        ]
        prev, self._acct = self._acct, now
        self._bump("net.bytes_out", now[0] - prev[0])
        self._bump("net.bytes_out_raw", now[1] - prev[1])
        self._bump("net.frames_compressed", now[2] - prev[2])
        self._bump("net.coalesced_events", now[3] - prev[3])

    def _write(self, envelope: Dict) -> None:
        """Stamp ``seq`` and write one envelope line (or frame).

        The stamp happens under the write lock, so ``seq`` order and
        wire order are the same thing — the guarantee the client's
        stream API asserts on.  On a compressed connection progress
        events buffer briefly and flush as one multi-record frame; any
        non-coalescible envelope flushes the buffer ahead of itself, so
        events still precede their terminal reply on the wire.
        """

        batch = protocol.expand_event_batch(envelope)
        with self._write_lock:
            if batch is not None:
                if not batch:
                    return
                if self._compress:
                    self._flush_locked()
                    self._write_multi(batch)
                else:
                    for env in batch:
                        self._write_one(env)
                return
            if (
                self._compress
                and envelope.get("event") == protocol.EV_PROGRESS
            ):
                self._pending_events.append(envelope)
                if len(self._pending_events) >= protocol.COALESCE_MAX:
                    self._flush_locked()
                elif self._flush_timer is None:
                    timer = threading.Timer(
                        protocol.COALESCE_WINDOW, self._flush_timed
                    )
                    timer.daemon = True
                    self._flush_timer = timer
                    timer.start()
                return
            self._flush_locked()
            self._write_one(envelope)

    def _flush_timed(self) -> None:
        with self._write_lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        """Ship buffered progress events (caller holds the lock)."""

        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        pending, self._pending_events = self._pending_events, []
        if pending:
            self._write_multi(pending)

    def _write_one(self, envelope: Dict) -> None:
        envelope["seq"] = self._seq.next()
        try:
            if self._binary:
                key = None
                if protocol.is_reply(envelope):
                    key = self._reply_keys.pop(envelope.get("id"), None)
                self.wfile.raw.write(self._encoder.encode(envelope, key))
                self.wfile.raw.flush()
                self._account_frames()
            else:
                line = protocol.encode(envelope) + "\n"
                self.wfile.write(line)
                self.wfile.flush()
                self._bump("net.bytes_out", len(line))
                self._bump("net.bytes_out_raw", len(line))
            self._bump("net.flushes")
        except (BrokenPipeError, ValueError, OSError):
            pass  # client went away; nothing to tell it

    def _write_multi(self, envelopes: list) -> None:
        """One multi-record frame (compress mode; caller holds lock)."""

        for env in envelopes:
            env["seq"] = self._seq.next()
        try:
            self.wfile.raw.write(self._encoder.encode_multi(envelopes))
            self.wfile.raw.flush()
            self._account_frames()
            self._bump("net.flushes")
        except (BrokenPipeError, ValueError, OSError):
            pass

    def _broadcast(self, kind: str, data: Dict) -> None:
        """Host-originated event (no owning request): ``"id": null``."""

        self._write(protocol.event_envelope(None, kind, data))

    # -- request execution ---------------------------------------------

    def _finish(self, rid, reply: Dict, timed_out: threading.Event) -> None:
        if not timed_out.is_set():
            self._write(reply)

    def _run_request(self, req: Dict) -> None:
        rid = req.get("id")
        if self._binary:
            key = protocol.reply_delta_key(req)
            if key is not None:
                self._reply_keys[rid] = key
        timed_out = threading.Event()

        def emit(kind: str, data: Dict) -> None:
            # Streamed events die with the request's deadline too: a
            # timed-out client has already been answered.
            if not timed_out.is_set():
                self._write(protocol.event_envelope(rid, kind, data))

        future = self.server._work.submit(self.server.execute, req, emit)
        future.add_done_callback(
            lambda f: self._finish(
                rid,
                f.result()
                if not f.cancelled()
                else protocol.reply_error(
                    rid, protocol.CANCELLED, "request cancelled"
                ),
                timed_out,
            )
        )
        timeout = req.get("timeout")
        if timeout is not None:
            def _watchdog():
                try:
                    future.result(timeout=float(timeout))
                except Exception:  # noqa: BLE001 — includes TimeoutError
                    if not future.done():
                        # Deadline passed: answer now, flag the body so a
                        # cooperative op stops, and drop the late result.
                        timed_out.set()
                        self.server.request_cancel(rid)
                        self._write(
                            protocol.reply_error(
                                rid,
                                protocol.TIMEOUT,
                                f"no result within {timeout}s",
                            )
                        )

            threading.Thread(target=_watchdog, daemon=True).start()

    # -- framing negotiation -------------------------------------------

    def _negotiate_frames(self, req: Dict) -> None:
        """Inline ``frames`` op: switch this connection to binary.

        The ok reply is the last JSON line of the connection; the mode
        flips before the write lock is released, so every subsequent
        envelope — whichever worker thread produces it — goes out as a
        frame.  Refused (a plain error reply, connection stays on JSON
        lines) when the transport has no byte-level streams.
        """

        rid = req.get("id")
        if req.get("mode") != "binary":
            self._write(
                protocol.reply_error(
                    rid,
                    protocol.BAD_REQUEST,
                    f"unknown framing mode {req.get('mode')!r}",
                )
            )
            return
        if self._binary:
            self._write(protocol.reply_ok(rid, {"frames": "binary"}))
            return
        if (
            getattr(self.rfile, "raw", None) is None
            or getattr(self.wfile, "raw", None) is None
        ):
            self._write(
                protocol.reply_error(
                    rid,
                    protocol.BAD_REQUEST,
                    "transport cannot carry binary frames",
                )
            )
            return
        with self._write_lock:
            envelope = protocol.reply_ok(rid, {"frames": "binary"})
            envelope["seq"] = self._seq.next()
            try:
                line = protocol.encode(envelope) + "\n"
                self.wfile.write(line)
                self.wfile.flush()
                self._bump("net.bytes_out", len(line))
                self._bump("net.bytes_out_raw", len(line))
                self._bump("net.flushes")
            except (BrokenPipeError, ValueError, OSError):
                pass
            self._encoder = protocol.FrameEncoder()
            self._binary = True

    def _negotiate_compress(self, req: Dict) -> None:
        """Inline ``compress`` op: the second negotiation rung.

        The ok reply ships as a plain (uncompressed) frame; the flag
        flips before the write lock is released, so every subsequent
        frame may compress and progress events start coalescing.
        Refused while the connection still speaks JSON lines — the
        ladder is strictly ``frames`` → ``compress``.
        """

        rid = req.get("id")
        if req.get("mode") != "zlib":
            self._write(
                protocol.reply_error(
                    rid,
                    protocol.BAD_REQUEST,
                    f"unknown compression mode {req.get('mode')!r}",
                )
            )
            return
        if not self._binary:
            self._write(
                protocol.reply_error(
                    rid,
                    protocol.BAD_REQUEST,
                    "compress requires binary frames "
                    "(negotiate frames first)",
                )
            )
            return
        with self._write_lock:
            self._write_one(protocol.reply_ok(rid, {"compress": "zlib"}))
            self._encoder.compress = True
            self._compress = True

    # -- the read loop -------------------------------------------------

    def handle_line(self, line: str) -> bool:
        """Process one request line; False once the stream should end."""

        if not line.strip():
            return True
        try:
            req = protocol.parse_request(
                line,
                max_bytes=self.server.max_request_bytes,
                size=getattr(self.rfile, "last_size", None),
            )
        except ProtocolError as exc:
            self._write(
                protocol.reply_error(exc.request_id, exc.type, str(exc))
            )
            return True
        return self._dispatch(req)

    def _dispatch(self, req: Dict) -> bool:
        """One parsed request; False once the stream should end."""

        if self.server.shutdown_event.is_set():
            self._write(
                protocol.reply_error(
                    req.get("id"),
                    protocol.SHUTTING_DOWN,
                    "server stopping",
                )
            )
            return False
        if req.get("op") == protocol.FRAMES_OP:
            self._negotiate_frames(req)
            return True
        if req.get("op") == protocol.COMPRESS_OP:
            self._negotiate_compress(req)
            return True
        if req.get("op") == "cancel":
            self.server.request_cancel(req.get("target"))
            self._write(
                protocol.reply_ok(
                    req.get("id"), {"cancelled": req.get("target")}
                )
            )
            return True
        if req.get("op") == "shutdown":
            # Inline: the reply must reach the client before this
            # connection (and then the server) winds down.
            self._write(self.server.execute(req))
            return False
        self._run_request(req)
        return True

    def run(self) -> None:
        self._listener_token = self.server.add_listener(self._broadcast)
        self.server.connections.enter()
        try:
            for line in self.rfile:
                self._bump(
                    "net.bytes_in",
                    getattr(self.rfile, "last_size", None) or len(line),
                )
                if not self.handle_line(line):
                    break
                if self.server.shutdown_event.is_set():
                    break
                if self._binary:
                    # The client saw our negotiation reply before it
                    # sends another byte, so the line iterator holds no
                    # readahead past this point; frame reads continue
                    # on the same buffered stream.
                    self._run_binary()
                    break
        finally:
            with self._write_lock:
                self._flush_locked()
            self.server.connections.leave()
            self.server.remove_listener(self._listener_token)

    def _run_binary(self) -> None:
        """Frame-mode read loop (after ``frames`` negotiation)."""

        raw = self.rfile.raw
        read1 = getattr(raw, "read1", raw.read)
        decoder = protocol.FrameDecoder(self.server.max_request_bytes)
        while not self.server.shutdown_event.is_set():
            try:
                req = decoder.next()
            except ProtocolError as exc:
                # The decoder already arranged to skip the bad frame;
                # answer and keep the connection alive, like a bad
                # JSON line would be answered.
                self._write(
                    protocol.reply_error(exc.request_id, exc.type, str(exc))
                )
                continue
            if req is None:
                try:
                    data = read1(65536)
                except (ValueError, OSError):
                    return
                if not data:
                    return
                self._bump("net.bytes_in", len(data))
                decoder.feed(data)
                continue
            if not self._dispatch(req):
                return


def serve_stdio(server: PedServer, rfile=None, wfile=None) -> None:
    """Serve one client over stdio (used by ``ped serve --stdio``).

    When the streams expose their byte-level ``buffer`` (real stdio
    does), the connection runs on it — which makes stdio eligible for
    binary-frame negotiation and gives the request parser exact wire
    sizes.  Plain text streams (tests pass ``StringIO``) still work,
    JSON-lines only.
    """

    rfile = rfile or sys.stdin
    wfile = wfile or sys.stdout
    rbuf = getattr(rfile, "buffer", None)
    if rbuf is not None:
        rfile = _TextReader(rbuf)
    wbuf = getattr(wfile, "buffer", None)
    if wbuf is not None:
        wfile = _TextWriter(wbuf)
    _Connection(server, rfile, wfile).run()


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    ped: PedServer


class _TCPHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one thread per client connection
        server: _ThreadingTCPServer = self.server  # type: ignore[assignment]
        rfile = self.rfile
        wfile = _TextWriter(self.wfile)
        _Connection(server.ped, _TextReader(rfile), wfile).run()
        if server.ped.shutdown_event.is_set():
            threading.Thread(target=server.shutdown, daemon=True).start()


class _TextReader:
    """Line iterator decoding a binary stream (socket rfile) as UTF-8.

    Records each line's wire byte length in ``last_size`` so the
    request parser can enforce its size cap without re-encoding the
    decoded text (the old per-request copy).
    """

    def __init__(self, raw) -> None:
        self.raw = raw
        self.last_size = None

    def __iter__(self):
        for line in self.raw:
            self.last_size = len(line)
            yield line.decode("utf-8", errors="replace")


class _TextWriter:
    def __init__(self, raw) -> None:
        self.raw = raw

    def write(self, text: str) -> None:
        self.raw.write(text.encode("utf-8"))

    def flush(self) -> None:
        self.raw.flush()


def serve_tcp(
    server: PedServer, host: str = "127.0.0.1", port: int = 0
) -> _ThreadingTCPServer:
    """Bind a threaded TCP front end; the caller runs ``serve_forever``.

    Returns the bound socketserver (``.server_address`` has the actual
    port when 0 was requested — handy for tests).
    """

    tcp = _ThreadingTCPServer((host, port), _TCPHandler)
    tcp.ped = server
    return tcp
