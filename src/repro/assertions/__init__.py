"""User assertion facility: facts about variable values that sharpen
analysis, as requested by the Ped evaluation users."""

from .facts import (  # noqa: F401
    Assertion,
    ConstantFact,
    DistinctFact,
    NonZeroFact,
    RangeFact,
    RelationFact,
    parse_assertion,
)
from .engine import AssertionDB  # noqa: F401
