"""Assertion kinds.

The experiences paper reports that users "requested higher-level
assertions": the ability to tell the tool facts it cannot derive — the
value range of a symbolic loop bound, that an index array is a
permutation, that two symbolic quantities never coincide.  Each fact kind
here corresponds to one of those requests:

* :class:`RangeFact` — ``n >= 1``, ``m <= 100``;
* :class:`ConstantFact` — ``n == 64`` (partial evaluation by hand);
* :class:`NonZeroFact` — a symbolic difference can never be zero;
* :class:`RelationFact` — ``k > n`` (linear relations between variables);
* :class:`DistinctFact` — an index array has pairwise-distinct entries
  (covers permutation arrays; dependence testing may then look *through*
  the index array).

:func:`parse_assertion` accepts the textual command language used by the
editor (``assert n >= 1``, ``assert distinct ip`` …).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis.symbolic import Linear, linear_of_expr
from ..fortran.parser import _ExprParser
from ..fortran.lexer import tokenize, NEWLINE, EOF


@dataclass(frozen=True)
class Assertion:
    """Base class; ``text`` preserves the user's spelling for display."""

    text: str


@dataclass(frozen=True)
class RangeFact(Assertion):
    """``lin ∈ [lo, hi]`` (either bound may be infinite)."""

    lin: Linear = None  # type: ignore[assignment]
    lo: float = float("-inf")
    hi: float = float("inf")


@dataclass(frozen=True)
class ConstantFact(Assertion):
    """``var == value`` — the user supplies an exact value."""

    var: str = ""
    value: int = 0


@dataclass(frozen=True)
class NonZeroFact(Assertion):
    """``lin ≠ 0``."""

    lin: Linear = None  # type: ignore[assignment]


@dataclass(frozen=True)
class RelationFact(Assertion):
    """``lin > 0`` / ``lin >= 0`` (normalised linear relation)."""

    lin: Linear = None  # type: ignore[assignment]
    strict: bool = False


@dataclass(frozen=True)
class DistinctFact(Assertion):
    """Array ``name`` holds pairwise-distinct values (injective)."""

    name: str = ""


class AssertionSyntaxError(ValueError):
    """Raised when an assertion command cannot be parsed."""


def _parse_expr_text(text: str) -> Linear:
    toks = [t for t in tokenize("      x = " + text) if t.kind not in (NEWLINE, EOF)]
    # strip the synthetic "x =" prefix (2 tokens)
    ep = _ExprParser(toks[2:], 0)
    expr = ep.expression()
    if not ep.done():
        raise AssertionSyntaxError(f"trailing input in assertion: {text!r}")
    return linear_of_expr(expr)


def parse_assertion(text: str) -> Assertion:
    """Parse the editor's assertion command language.

    Forms accepted::

        distinct ip            -- index array has pairwise-distinct entries
        n == 64                -- constant value
        n >= 1, n > 0, n <= k  -- linear relations (any comparison operator)
        m /= 0                 -- non-zero fact (also: m .ne. 0)
    """

    raw = text.strip()
    if not raw:
        raise AssertionSyntaxError("empty assertion")
    # Accept Fortran dotted comparison spellings.
    low = raw.lower()
    for dotted, canon in (
        (".le.", "<="), (".ge.", ">="), (".lt.", "<"),
        (".gt.", ">"), (".eq.", "=="), (".ne.", "/="),
    ):
        low = low.replace(dotted, f" {canon} ")
    raw = low
    parts = raw.split()
    if parts[0].lower() == "distinct":
        if len(parts) != 2:
            raise AssertionSyntaxError("usage: distinct <array>")
        return DistinctFact(raw, parts[1].lower())

    for op in ("<=", ">=", "==", "/=", "<", ">"):
        # Use the canonical spellings; dotted forms were canonicalised by
        # the tokenizer inside _parse_expr_text, so split on text level for
        # the operators we print.
        idx = _find_op(raw, op)
        if idx is None:
            continue
        lhs = _parse_expr_text(raw[:idx])
        rhs = _parse_expr_text(raw[idx + len(op) :])
        diff = lhs - rhs
        if op == "==":
            value = diff.constant_value()
            atoms = diff.atoms()
            if len(atoms) == 1 and diff.coeff(atoms[0]) == 1:
                const = -(diff - Linear.atom(atoms[0])).const
                if const.denominator == 1:
                    return ConstantFact(raw, atoms[0], int(const))
            return RangeFact(raw, diff, 0.0, 0.0)
        if op == "/=":
            return NonZeroFact(raw, diff)
        if op == ">":
            return RelationFact(raw, diff, True)
        if op == ">=":
            return RelationFact(raw, diff, False)
        if op == "<":
            return RelationFact(raw, -diff, True)
        return RelationFact(raw, -diff, False)
    raise AssertionSyntaxError(f"no comparison operator in assertion: {text!r}")


def _find_op(raw: str, op: str) -> Optional[int]:
    """Find a top-level comparison operator, longest-first match."""

    depth = 0
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0 and raw.startswith(op, i):
            # Avoid matching '<' inside '<=' etc.: the caller iterates
            # longest-first, but guard '<' followed by '=' explicitly.
            if op in ("<", ">") and i + 1 < len(raw) and raw[i + 1] == "=":
                i += 1
                continue
            return i
        i += 1
    return None
