"""The assertion database — an :class:`Oracle` for the dependence tests.

User assertions accumulate in an :class:`AssertionDB`, which answers the
symbolic queries of the dependence machinery:

* ``range_of(lin)``    — bounds of a linear form under the assertions;
* ``nonzero(lin)``     — is the form provably never zero?
* ``injective(name)``  — was the array asserted distinct/permutation?
* ``constants()``      — value facts usable as a constant environment.

Range evaluation combines direct constraint matching (the asserted form or
a scalar multiple of it) with per-atom interval arithmetic, which is
enough for the bound/step/offset assertions the Ped users actually made.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.symbolic import Linear
from ..dependence.tests import Oracle
from .facts import (
    Assertion,
    ConstantFact,
    DistinctFact,
    NonZeroFact,
    RangeFact,
    RelationFact,
    parse_assertion,
)

INF = math.inf


class AssertionDB(Oracle):
    """A mutable set of user assertions implementing the Oracle protocol."""

    def __init__(self) -> None:
        self.facts: List[Assertion] = []
        self._constraints: List[Tuple[Linear, float, float]] = []
        self._nonzero: List[Linear] = []
        self._injective: Set[str] = set()
        self._constants: Dict[str, int] = {}
        self._version = 0

    # -- mutation -----------------------------------------------------------

    def add(self, fact_or_text) -> Assertion:
        """Add a fact (or parse and add an assertion command string)."""

        fact = (
            parse_assertion(fact_or_text)
            if isinstance(fact_or_text, str)
            else fact_or_text
        )
        self._version += 1
        self.facts.append(fact)
        if isinstance(fact, RangeFact):
            self._constraints.append((fact.lin, fact.lo, fact.hi))
        elif isinstance(fact, RelationFact):
            lo = 1.0 if fact.strict else 0.0
            self._constraints.append((fact.lin, lo, INF))
        elif isinstance(fact, NonZeroFact):
            self._nonzero.append(fact.lin)
        elif isinstance(fact, DistinctFact):
            self._injective.add(fact.name)
        elif isinstance(fact, ConstantFact):
            self._constants[fact.var] = fact.value
            self._constraints.append(
                (Linear.atom(fact.var), float(fact.value), float(fact.value))
            )
        return fact

    def remove(self, fact: Assertion) -> None:
        self._version += 1
        self.facts.remove(fact)
        self._rebuild()

    def clear(self) -> None:
        self._version += 1
        self.facts.clear()
        self._rebuild()

    def _rebuild(self) -> None:
        facts = list(self.facts)
        self.facts = []
        self._constraints = []
        self._nonzero = []
        self._injective = set()
        self._constants = {}
        for f in facts:
            self.add(f)

    # -- Oracle protocol -------------------------------------------------------

    def version(self) -> int:
        return self._version

    def digest(self):
        """Content digest for shared-memo keying: the ordered fact texts.

        Order matters — a later ``ConstantFact`` for the same variable
        overwrites an earlier one — so the digest preserves insertion
        order rather than sorting.  Two databases with the same fact
        spellings answer every oracle query identically.
        """

        return ("asserts", tuple(f.text for f in self.facts))

    def injective(self, name: str) -> bool:
        return name.lower() in self._injective

    def constants(self) -> Dict[str, int]:
        return dict(self._constants)

    def nonzero(self, lin: Linear) -> bool:
        for fact in self._nonzero:
            ratio = _scalar_ratio(lin, fact)
            if ratio is not None and ratio != 0:
                return True
        lo, hi = self.range_of(lin)
        return lo > 0 or hi < 0

    def range_of(self, lin: Linear) -> Tuple[float, float]:
        if lin.is_constant:
            value = float(lin.const)
            return (value, value)
        lo, hi = self._interval_by_atoms(lin)
        # Direct constraint matches tighten the interval.
        for clin, clo, chi in self._constraints:
            ratio = _scalar_ratio(lin, clin)
            if ratio is None:
                continue
            r = float(ratio)
            if r > 0:
                cand = (clo * r, chi * r)
            else:
                cand = (chi * r, clo * r)
            lo = max(lo, cand[0])
            hi = min(hi, cand[1])
        return (lo, hi)

    # -- helpers -------------------------------------------------------------

    def atom_range(self, atom: str) -> Tuple[float, float]:
        """Best known range of a single atom."""

        if atom in self._constants:
            v = float(self._constants[atom])
            return (v, v)
        lo, hi = -INF, INF
        for clin, clo, chi in self._constraints:
            # A constraint clo ≤ r·x + c ≤ chi on a single atom x bounds
            # x ∈ [(clo − c)/r, (chi − c)/r] (swapped when r < 0).
            if clin.atoms() != (atom,):
                continue
            r = float(clin.coeff(atom))
            c = float(clin.const)
            if r == 0:
                continue
            b1 = (clo - c) / r if clo != -INF else (-INF if r > 0 else INF)
            b2 = (chi - c) / r if chi != INF else (INF if r > 0 else -INF)
            cand_lo, cand_hi = (b1, b2) if r > 0 else (b2, b1)
            lo = max(lo, cand_lo)
            hi = min(hi, cand_hi)
        return (lo, hi)

    def _interval_by_atoms(self, lin: Linear) -> Tuple[float, float]:
        lo = hi = float(lin.const)
        for atom, coeff in lin.coeffs:
            a_lo, a_hi = self.atom_range(atom)
            c = float(coeff)
            if c >= 0:
                term_lo, term_hi = c * a_lo, c * a_hi
            else:
                term_lo, term_hi = c * a_hi, c * a_lo
            lo += term_lo
            hi += term_hi
            if math.isnan(lo) or math.isnan(hi):
                return (-INF, INF)
        return (lo, hi)


def _scalar_ratio(a: Linear, b: Linear) -> Optional[Fraction]:
    """If ``a == r·b`` for a scalar r (ignoring constants only when both
    match), return r; else None.  Exact comparison including constants."""

    if not b.coeffs:
        return None
    # Determine candidate ratio from the first atom of b present in a.
    b_dict = dict(b.coeffs)
    a_dict = dict(a.coeffs)
    if set(b_dict) != set(a_dict):
        return None
    ratio: Optional[Fraction] = None
    for atom, bc in b_dict.items():
        ac = a_dict[atom]
        r = ac / bc
        if ratio is None:
            ratio = r
        elif ratio != r:
            return None
    if ratio is None:
        return None
    if a.const != b.const * ratio:
        return None
    return ratio
