"""Command-line entry points.

``python -m repro ped FILE.f``      — interactive Ped session (REPL)
``python -m repro analyze FILE.f``  — print loops + verdicts + deps
``python -m repro auto FILE.f``     — best-effort automatic parallelizer
``python -m repro serve``           — Ped session server (stdio or TCP)
``python -m repro corpus analyze``  — batch-analyze many files, rollups
``python -m repro corpus submit``   — submit a corpus batch to a server
``python -m repro corpus status``   — poll a server-side corpus job
``python -m repro corpus query``    — fleet-wide aggregate from a server
``python -m repro fleet shard``     — one shard server (asyncio transport)
``python -m repro fleet route``     — shard router over a consistent ring
``python -m repro stats``           — merged metrics from a server/router
``python -m repro journal NAME``    — page a session's mutation journal
``python -m repro replay NAME``     — replay/restore a session's journal
``python -m repro tables``          — regenerate the evaluation tables
``python -m repro suite NAME``      — dump a suite program's source

``ped``, ``analyze`` and ``auto`` all take ``--jobs N`` (fan per-unit
analysis out over N worker processes; ``--jobs auto`` sizes the pool to
the observed batch width) and ``--cache-dir PATH`` (persist analysis
results so reopening a file starts warm); both default off, reproducing
the classic serial in-memory pipeline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _read(path: str) -> str:
    return Path(path).read_text()


def _engine(args: argparse.Namespace, features=None):
    """An engine honouring the shared ``--jobs``/``--cache-dir`` flags."""

    from .service import build_engine

    if getattr(args, "profile", False):
        # ``--profile`` also times the dependence tester per tier; the
        # timings surface as ``tier.<name>_s`` counters in the stats
        # table (and ride dep payloads into worker processes).
        from .dependence.driver import HOT_PATH

        HOT_PATH.profile_tiers = True
    return build_engine(
        features=features,
        jobs=getattr(args, "jobs", 1) or 1,
        cache_dir=getattr(args, "cache_dir", None),
    )


def cmd_ped(args: argparse.Namespace) -> int:
    from .editor import CommandInterpreter, PedSession

    source = _read(args.file)
    session = PedSession(source, engine=_engine(args))
    ped = CommandInterpreter(session)
    print(f"ParaScope Editor — {args.file}")
    print("type 'help' for commands, 'show' for the window, ctrl-D to quit")
    print(ped.execute("loops"))
    while True:
        try:
            line = input("ped> ")
        except EOFError:
            print()
            break
        except KeyboardInterrupt:
            print()
            break
        if line.strip() in ("quit", "exit"):
            break
        out = ped.execute(line)
        if out:
            print(out)
    if args.output:
        Path(args.output).write_text(session.source)
        print(f"wrote {args.output}")
    if args.profile:
        print(session.engine.stats.render())
    session.engine.close()
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .core import analyze
    from .interproc import FeatureSet

    features = FeatureSet.minimal() if args.minimal else FeatureSet()
    engine = _engine(args, features=features)
    pa = analyze(_read(args.file), features, engine=engine)
    for name, ua in sorted(pa.units.items()):
        print(f"{name} ({ua.unit.kind}): {len(ua.loops)} loop(s)")
        for idx, nest in enumerate(ua.loops):
            info = ua.info_for(nest.loop)
            indent = "  " * nest.depth
            verdict = "parallelizable" if info.parallelizable else "serial"
            print(
                f"  [{idx}]{indent}do {nest.loop.var} (line {nest.loop.line}): "
                f"{verdict}"
            )
            if args.verbose:
                for o in info.obstacles:
                    print(f"        - {o}")
    print(
        f"\n{pa.parallel_loop_count()}/{pa.loop_count()} loops parallelizable "
        f"({'minimal' if args.minimal else 'full'} analysis)"
    )
    if args.profile:
        print()
        print(engine.stats.render())
    engine.close()
    return 0


def cmd_auto(args: argparse.Namespace) -> int:
    from .core import parallelize_program

    engine = _engine(args)
    result = parallelize_program(
        _read(args.file), require_profitable=not args.eager, engine=engine
    )
    for unit, idx in result.parallelized:
        print(f"parallelized: {unit} loop[{idx}]")
    for (unit, idx), reason in sorted(result.skipped.items()):
        print(f"skipped: {unit} loop[{idx}] — {reason}")
    if args.output:
        Path(args.output).write_text(result.source)
        print(f"wrote {args.output}")
    else:
        print()
        print(result.source)
    if args.profile:
        print(engine.stats.render())
    engine.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import (
        MAX_REQUEST_BYTES,
        PedServer,
        serve_stdio,
        serve_tcp,
    )

    server = PedServer(
        jobs=args.jobs or 1,
        cache_dir=args.cache_dir,
        max_workers=args.workers,
        max_request_bytes=args.max_request_bytes or MAX_REQUEST_BYTES,
    )
    try:
        if args.use_async:
            from .fleet import serve_async_stdio, serve_async_tcp

            if args.stdio:
                serve_async_stdio(server)
            else:
                serve_async_tcp(server, bind=args.host, port=args.port)
        elif args.stdio:
            serve_stdio(server)
        else:
            tcp = serve_tcp(server, host=args.host, port=args.port)
            host, port = tcp.server_address[:2]
            print(f"ped server listening on {host}:{port}", file=sys.stderr)
            try:
                tcp.serve_forever(poll_interval=0.2)
            except KeyboardInterrupt:
                pass
            finally:
                tcp.server_close()
    finally:
        server.close()
    return 0


def _corpus_programs(args: argparse.Namespace):
    """``(name, source)`` pairs from ``FILES`` and/or ``--generate N``."""

    programs = []
    for path in args.files or ():
        programs.append((Path(path).stem, _read(path)))
    if getattr(args, "generate", 0):
        from .workloads.generator import generate_program

        for i in range(args.generate):
            programs.append(
                (
                    f"gen{i:03d}",
                    generate_program(
                        n_routines=2 + i % 3,
                        n_fields=2 + i % 2,
                        grid=8 + 4 * (i % 3),
                        steps=2 + i % 4,
                    ),
                )
            )
    if not programs:
        raise SystemExit("corpus: no programs (give FILES or --generate N)")
    return programs


def _print_rollups(query) -> None:
    """Render the standard rollups; ``query(name) -> value dict``."""

    summary = query("summary")
    print(
        f"{summary['programs']} program(s), {summary['errors']} error(s), "
        f"{summary['units']} unit(s), "
        f"{summary['parallel_loops']}/{summary['loops']} loops "
        f"parallelizable ({summary['parallel_fraction']:.0%})"
    )
    obstacles = query("obstacles")
    if obstacles["ranked"]:
        print("\ntop obstacles (loops blocked, fleet-wide):")
        for row in obstacles["ranked"][:8]:
            print(f"  {row['loops']:>5}  {row['obstacle']}")
    tiers = query("tiers")
    if tiers["tiers"]:
        print(f"\ndependence-test tiers ({tiers['pairs']} pairs):")
        for tier, n in sorted(tiers["tiers"].items(), key=lambda kv: -kv[1]):
            print(f"  {n:>5}  {tier}")
    transforms = query("transforms")
    if transforms["ranked"]:
        print("\ntransformation applicability (loops):")
        for row in transforms["ranked"]:
            print(f"  {row['loops']:>5}  {row['transform']}")


def cmd_corpus_analyze(args: argparse.Namespace) -> int:
    """Local corpus batch: analyze every program, print the rollups."""

    import json

    from .incremental.stats import EngineStats
    from .interproc import FeatureSet
    from .pipeline import CorpusRunner
    from .service import make_pool

    programs = _corpus_programs(args)
    features = FeatureSet.minimal() if args.minimal else FeatureSet()
    stats = EngineStats()
    pool = make_pool(args.jobs or 1, stats=stats)
    runner = CorpusRunner(pool=pool, features=features, stats=stats)
    try:
        job = runner.submit(programs)

        def progress(record):
            if args.verbose:
                print(
                    f"[{record['done']}/{record['total']}] "
                    f"{record['program']}: {record['status']}"
                )

        runner.run(job, progress=progress)
        _print_rollups(lambda name: runner.query(job, name)[0])
        if args.json:
            payload = {
                "programs": job.result_records(),
                "aggregates": {
                    name: runner.query(job, name)[0]
                    for name in ("summary", "obstacles", "tiers", "transforms")
                },
            }
            Path(args.json).write_text(json.dumps(payload, indent=2))
            print(f"\nwrote {args.json}")
    finally:
        pool.close()
    return 0


def _corpus_client(args: argparse.Namespace):
    from .service import PedClient

    client = PedClient.connect(host=args.host, port=args.port)
    # Climb the negotiation ladder to --wire; each rung falls back
    # gracefully, so an older server just leaves the connection lower.
    wire = getattr(args, "wire", "json")
    if wire in ("frames", "compress"):
        client.negotiate_frames()
    if wire == "compress":
        client.negotiate_compression()
    return client


def cmd_corpus_submit(args: argparse.Namespace) -> int:
    import json

    programs = _corpus_programs(args)
    with _corpus_client(args) as client:
        result = client.corpus_submit(
            programs, job=args.job, wait=args.wait
        )
        print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_corpus_status(args: argparse.Namespace) -> int:
    import json

    with _corpus_client(args) as client:
        print(
            json.dumps(
                client.corpus_status(args.job), indent=2, sort_keys=True
            )
        )
    return 0


def cmd_corpus_query(args: argparse.Namespace) -> int:
    import json

    with _corpus_client(args) as client:
        result = client.corpus_query(args.job, args.aggregate)
        print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_fleet_shard(args: argparse.Namespace) -> int:
    """One shard server on the asyncio transport (``serve --async``
    with fleet-flavoured defaults: ephemeral port unless given)."""

    from .fleet import serve_async_tcp
    from .service import MAX_REQUEST_BYTES, PedServer

    server = PedServer(
        jobs=args.jobs or 1,
        cache_dir=args.cache_dir,
        max_workers=args.workers,
        max_request_bytes=args.max_request_bytes or MAX_REQUEST_BYTES,
    )
    try:
        serve_async_tcp(server, bind=args.host, port=args.port)
    finally:
        server.close()
    return 0


def cmd_fleet_route(args: argparse.Namespace) -> int:
    """The shard router: one front end over ``--shard`` servers."""

    from .fleet import FleetRouter, MemoGossip, serve_async_tcp

    router = FleetRouter(
        args.shard,
        retries=args.retries,
        backoff=args.backoff,
        wire=args.wire,
    )
    gossip = None
    if args.gossip_interval > 0:
        gossip = MemoGossip(
            args.shard,
            interval=args.gossip_interval,
            stats=router.stats,
        )
        gossip.start()
    try:
        serve_async_tcp(router, bind=args.host, port=args.port)
    finally:
        if gossip is not None:
            gossip.close()
        router.close()
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Merged metrics from a running server or router."""

    import json

    with _corpus_client(args) as client:
        metrics = client.request("metrics")["metrics"]
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
        return 0
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, float):
            print(f"{name:<40} {value:.3f}")
        else:
            print(f"{name:<40} {value}")
    return 0


def cmd_journal(args: argparse.Namespace) -> int:
    """Page through a session's mutation journal on a server/router."""

    import json

    with _corpus_client(args) as client:
        page = client.session_log(
            args.session, start=args.start, count=args.count
        )
    if args.json:
        print(json.dumps(page, indent=2, sort_keys=True))
        return 0
    print(
        f"session {page['session']} ({page['origin']}): "
        f"{page['total']} record(s), showing "
        f"{page['start']}..{page['start'] + page['count']}"
    )
    for offset, record in enumerate(page["records"]):
        arg_text = " ".join(
            f"{k}={v!r}" for k, v in sorted(record.get("args", {}).items())
        )
        print(f"  [{page['start'] + offset:>4}] {record['op']:<10} {arg_text}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Replay a session's journal server-side (or restore it live)."""

    import json

    with _corpus_client(args) as client:
        if args.restore:
            result = client.session_restore(
                args.session, replace=args.replace
            )
        else:
            result = client.session_replay(args.session, upto=args.upto)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    verb = "restored" if args.restore else "replayed"
    print(
        f"{verb} session {result['session']}: "
        f"{result['records']} record(s), "
        f"fingerprint {result['fingerprint'][:16]}…, "
        f"units: {', '.join(result['units'])}"
    )
    if "undo_depth" in result:
        print(f"undo depth {result['undo_depth']}")
    return 0


def cmd_tables(args: argparse.Namespace) -> int:
    from .evaluation.tables import render_table1, render_table2, render_table3

    print("Table 1 — the program suite")
    print(render_table1())
    print()
    print("Table 2 — user actions and parallelization outcomes")
    print(render_table2())
    print()
    print("Table 3 — analysis contribution per program")
    print(render_table3())
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    from .workloads import SUITE, get_program

    if not args.name:
        for prog in SUITE.values():
            print(f"{prog.name:<10} {prog.domain:<32} {prog.lines:>4} lines")
        return 0
    prog = get_program(args.name)
    print(prog.source)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    profile_help = "print incremental-engine stage timers and cache stats"

    def jobs_value(text):
        if text == "auto":
            return "auto"
        try:
            return int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected an integer or 'auto', got {text!r}"
            )

    def service_flags(p):
        p.add_argument(
            "-j",
            "--jobs",
            type=jobs_value,
            default=1,
            metavar="N",
            help=(
                "analyze units on N worker processes, or 'auto' to size "
                "the pool to the observed batch width (default: serial)"
            ),
        )
        p.add_argument(
            "--cache-dir",
            metavar="PATH",
            help="persist analysis results under PATH for warm starts",
        )

    p = sub.add_parser("ped", help="interactive Ped session over a file")
    p.add_argument("file")
    p.add_argument("-o", "--output", help="write the edited source on exit")
    p.add_argument("--profile", action="store_true", help=profile_help)
    service_flags(p)
    p.set_defaults(fn=cmd_ped)

    p = sub.add_parser("analyze", help="loop verdicts for a file")
    p.add_argument("file")
    p.add_argument("--minimal", action="store_true", help="baseline analysis")
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument("--profile", action="store_true", help=profile_help)
    service_flags(p)
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser("auto", help="automatic best-effort parallelizer")
    p.add_argument("file")
    p.add_argument("-o", "--output")
    p.add_argument("--eager", action="store_true", help="ignore profitability")
    p.add_argument("--profile", action="store_true", help=profile_help)
    service_flags(p)
    p.set_defaults(fn=cmd_auto)

    def server_flags(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=7077)
        p.add_argument(
            "--workers",
            type=int,
            default=8,
            help="max concurrently handled requests (default 8)",
        )
        p.add_argument(
            "--max-request-bytes",
            type=int,
            default=None,
            metavar="N",
            help=(
                "reject request lines over N bytes with a structured "
                "payload-too-large error (default 4 MiB)"
            ),
        )
        service_flags(p)

    p = sub.add_parser(
        "serve", help="Ped session server (JSON-lines protocol)"
    )
    p.add_argument(
        "--stdio",
        action="store_true",
        help="serve one client on stdin/stdout instead of TCP",
    )
    p.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help=(
            "serve on the asyncio fleet transport (one event loop for "
            "all connections) instead of a thread per client"
        ),
    )
    server_flags(p)
    p.set_defaults(fn=cmd_serve)

    corpus = sub.add_parser(
        "corpus", help="corpus-scale batch analysis and rollups"
    )
    csub = corpus.add_subparsers(dest="corpus_command", required=True)

    def remote_flags(p):
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, default=7077)
        p.add_argument(
            "--wire",
            choices=("json", "frames", "compress"),
            default="compress",
            help="wire level to negotiate (falls back per rung; "
            "default compress)",
        )

    p = csub.add_parser(
        "analyze", help="batch-analyze files locally, print rollups"
    )
    p.add_argument("files", nargs="*", metavar="FILE")
    p.add_argument(
        "--generate",
        type=int,
        default=0,
        metavar="N",
        help="add N synthetic workload programs to the corpus",
    )
    p.add_argument("--minimal", action="store_true", help="baseline analysis")
    p.add_argument("-v", "--verbose", action="store_true")
    p.add_argument(
        "--json", metavar="PATH", help="write records + rollups as JSON"
    )
    service_flags(p)
    p.set_defaults(fn=cmd_corpus_analyze)

    p = csub.add_parser(
        "submit", help="submit a corpus batch to a running server"
    )
    p.add_argument("files", nargs="*", metavar="FILE")
    p.add_argument("--generate", type=int, default=0, metavar="N")
    p.add_argument("--job", help="extend an existing job instead")
    p.add_argument(
        "--wait", action="store_true", help="block until the batch finishes"
    )
    remote_flags(p)
    p.set_defaults(fn=cmd_corpus_submit)

    p = csub.add_parser("status", help="poll a server-side corpus job")
    p.add_argument("job")
    remote_flags(p)
    p.set_defaults(fn=cmd_corpus_status)

    p = csub.add_parser(
        "query", help="fleet-wide aggregate rollup from a server"
    )
    p.add_argument("job")
    p.add_argument(
        "aggregate",
        choices=("summary", "obstacles", "tiers", "transforms"),
    )
    remote_flags(p)
    p.set_defaults(fn=cmd_corpus_query)

    fleet = sub.add_parser(
        "fleet", help="sharded serving: asyncio shards behind a router"
    )
    fsub = fleet.add_subparsers(dest="fleet_command", required=True)

    p = fsub.add_parser(
        "shard", help="one shard server on the asyncio transport"
    )
    server_flags(p)
    p.set_defaults(fn=cmd_fleet_shard, port=0, stdio=False)

    p = fsub.add_parser(
        "route", help="consistent-hash router over --shard servers"
    )
    p.add_argument(
        "--shard",
        action="append",
        required=True,
        metavar="HOST:PORT",
        help="a shard server address (repeatable; at least one)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7070)
    p.add_argument(
        "--retries",
        type=int,
        default=2,
        help="connect retries per shard before rehash (default 2)",
    )
    p.add_argument(
        "--backoff",
        type=float,
        default=0.05,
        metavar="S",
        help="base retry backoff seconds, doubled per attempt",
    )
    p.add_argument(
        "--gossip-interval",
        type=float,
        default=5.0,
        metavar="S",
        help="memo gossip period in seconds; 0 disables (default 5)",
    )
    p.add_argument(
        "--wire",
        choices=("json", "frames", "compress"),
        default="compress",
        help="wire level to negotiate with shards (default compress)",
    )
    p.set_defaults(fn=cmd_fleet_route)

    p = sub.add_parser(
        "stats", help="merged metrics from a running server or router"
    )
    p.add_argument("--json", action="store_true", help="raw JSON output")
    remote_flags(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "journal", help="page a session's mutation journal from a server"
    )
    p.add_argument("session", help="the session name")
    p.add_argument(
        "--start", type=int, default=0, help="first record index (default 0)"
    )
    p.add_argument(
        "--count", type=int, default=None, help="records per page (default all)"
    )
    p.add_argument("--json", action="store_true", help="raw JSON output")
    remote_flags(p)
    p.set_defaults(fn=cmd_journal)

    p = sub.add_parser(
        "replay",
        help="rebuild a session from its journal on a server "
        "(time travel with --upto, crash recovery with --restore)",
    )
    p.add_argument("session", help="the session name")
    p.add_argument(
        "--upto",
        type=int,
        default=None,
        metavar="N",
        help="replay only the first N records (default: all)",
    )
    p.add_argument(
        "--restore",
        action="store_true",
        help="re-register the replayed session live (crash recovery)",
    )
    p.add_argument(
        "--replace",
        action="store_true",
        help="with --restore: replace an already-open session",
    )
    p.add_argument("--json", action="store_true", help="raw JSON output")
    remote_flags(p)
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("tables", help="regenerate the evaluation tables")
    p.set_defaults(fn=cmd_tables)

    p = sub.add_parser("suite", help="list/dump the synthetic suite")
    p.add_argument("name", nargs="?")
    p.set_defaults(fn=cmd_suite)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
