"""Generic iterative data-flow solver.

A :class:`DataFlowProblem` bundles direction, meet operator and transfer
function; :func:`solve` runs a worklist iteration to the (unique, by
monotonicity) fixed point.  Facts are ``frozenset`` instances so they hash
and compare cheaply; problems whose lattice is not a powerset can wrap
their facts in frozensets of tuples.

This is the substrate under reaching definitions, liveness, kill analysis
and the interprocedural propagation problems.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable

from .cfg import CFG, ENTRY, EXIT

Fact = FrozenSet
Transfer = Callable[[int, Fact], Fact]

FORWARD = "forward"
BACKWARD = "backward"
MAY = "may"  # meet is union
MUST = "must"  # meet is intersection


@dataclass
class DataFlowProblem:
    """A data-flow problem over a statement-level CFG.

    Parameters
    ----------
    direction:
        :data:`FORWARD` or :data:`BACKWARD`.
    kind:
        :data:`MAY` (union meet, bottom = empty set) or :data:`MUST`
        (intersection meet; the boundary node seeds the iteration and
        unvisited nodes start at the universal set).
    transfer:
        ``transfer(sid, in_fact) -> out_fact``.
    boundary:
        Fact at ENTRY (forward) or EXIT (backward).
    universe:
        Required for MUST problems: the top element.
    """

    direction: str
    kind: str
    transfer: Transfer
    boundary: Fact = frozenset()
    universe: Fact = frozenset()


def solve(cfg: CFG, problem: DataFlowProblem) -> Dict[int, Fact]:
    """Solve ``problem`` on ``cfg``; returns the IN fact of each node.

    For a forward problem the result maps each node to the fact holding
    *before* the node executes; for a backward problem, *after* it.
    """

    if problem.direction == FORWARD:
        edges_in = cfg.pred
        edges_out = cfg.succ
        start = ENTRY
    else:
        edges_in = cfg.succ
        edges_out = cfg.pred
        start = EXIT

    nodes = cfg.nodes()
    if problem.kind == MAY:
        in_facts: Dict[int, Fact] = {n: frozenset() for n in nodes}
    else:
        in_facts = {n: problem.universe for n in nodes}
    in_facts[start] = problem.boundary
    out_facts: Dict[int, Fact] = {
        n: problem.transfer(n, in_facts[n]) for n in nodes
    }

    work = deque(nodes)
    in_work = set(nodes)
    while work:
        n = work.popleft()
        in_work.discard(n)
        if n != start:
            preds = [p for p in edges_in.get(n, ()) if p in in_facts]
            if preds:
                if problem.kind == MAY:
                    new_in: Fact = frozenset().union(*(out_facts[p] for p in preds))
                else:
                    new_in = frozenset.intersection(
                        *(frozenset(out_facts[p]) for p in preds)
                    )
            else:
                new_in = frozenset() if problem.kind == MAY else problem.universe
            in_facts[n] = new_in
        new_out = problem.transfer(n, in_facts[n])
        if new_out != out_facts[n]:
            out_facts[n] = new_out
            for s in edges_out.get(n, ()):
                if s not in in_work:
                    work.append(s)
                    in_work.add(s)
    return in_facts


def solve_with_out(cfg: CFG, problem: DataFlowProblem):
    """Like :func:`solve` but returns ``(in_facts, out_facts)``."""

    in_facts = solve(cfg, problem)
    out_facts = {n: problem.transfer(n, in_facts[n]) for n in cfg.nodes()}
    return in_facts, out_facts


def gen_kill_transfer(
    gen: Dict[int, Iterable], kill: Dict[int, Iterable]
) -> Transfer:
    """Build the standard ``out = gen ∪ (in − kill)`` transfer function."""

    gen_f = {n: frozenset(v) for n, v in gen.items()}
    kill_f = {n: frozenset(v) for n, v in kill.items()}

    def transfer(n: int, fact: Fact) -> Fact:
        return gen_f.get(n, frozenset()) | (fact - kill_f.get(n, frozenset()))

    return transfer
