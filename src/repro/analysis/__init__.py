"""Intraprocedural scalar analyses: CFG, data flow, def-use, constants,
symbolic expressions, kill analysis, induction variables, reductions."""

from .cfg import CFG, ENTRY, EXIT, build_cfg  # noqa: F401
from .dataflow import DataFlowProblem, solve  # noqa: F401
from .defuse import (  # noqa: F401
    ConservativeEffects,
    DefUse,
    SideEffects,
    compute_defuse,
    stmt_defs,
    stmt_uses,
)
from .constants import ConstantMap, propagate_constants  # noqa: F401
from .symbolic import Linear, affine, linear_of_expr  # noqa: F401
from .kill import killed_scalars, privatizable_scalars, upward_exposed  # noqa: F401
from .induction import auxiliary_inductions, induction_variables  # noqa: F401
from .reductions import Reduction, find_reductions  # noqa: F401
