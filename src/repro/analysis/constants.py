"""Conditional constant propagation for scalars.

A forward optimistic propagation over the statement CFG: every scalar
starts ⊤ (unknown-yet), assignments evaluate in the incoming environment,
and the meet of two environments keeps only agreeing constants.  PARAMETER
constants and, when supplied, *interprocedural constants* (constants
inherited from all callers — Table 3's ``constants`` column) seed the
boundary environment.

The result feeds symbolic analysis: constant loop bounds make performance
estimation precise, and constant subscript terms let the exact dependence
tests fire where symbolic terms would otherwise force conservative
assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Union

from ..fortran.ast_nodes import (
    Assign,
    BinOp,
    CallStmt,
    DoLoop,
    Expr,
    FuncRef,
    IOStmt,
    LogicalLit,
    Num,
    ProcedureUnit,
    UnOp,
    VarRef,
)
from ..fortran.symbols import PARAM, SymbolTable
from .cfg import CFG, ENTRY, build_cfg
from .defuse import ConservativeEffects, SideEffects
from .symbolic import Linear

Value = Union[int, float, bool]

#: Lattice: missing key = ⊤ (unvisited), _NAC = ⊥ (not a constant).
_NAC = object()


@dataclass
class ConstantMap:
    """Constants known at the entry of each statement.

    ``at(sid)`` returns a plain ``{name: value}`` dict of the scalars whose
    value is a compile-time constant just before ``sid`` executes.
    """

    entry: Dict[int, Dict[str, Value]] = field(default_factory=dict)

    def at(self, sid: int) -> Dict[str, Value]:
        return self.entry.get(sid, {})

    def linear_env(self, sid: int) -> Dict[str, Linear]:
        """The same facts as :class:`Linear` constants for symbolic use."""

        return {
            name: Linear.constant(value)
            for name, value in self.at(sid).items()
            if isinstance(value, int)
        }


def eval_const(expr: Expr, env: Mapping[str, Value]) -> Optional[Value]:
    """Evaluate ``expr`` to a constant under ``env``; None if unknown."""

    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, LogicalLit):
        return expr.value
    if isinstance(expr, VarRef):
        value = env.get(expr.name)
        return None if value is _NAC else value
    if isinstance(expr, UnOp):
        inner = eval_const(expr.operand, env)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "+":
            return inner
        if expr.op == ".not.":
            return not inner
        return None
    if isinstance(expr, BinOp):
        left = eval_const(expr.left, env)
        right = eval_const(expr.right, env)
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                if right == 0:
                    return None
                if isinstance(left, int) and isinstance(right, int):
                    return int(left / right)  # Fortran truncates toward zero
                return left / right
            if expr.op == "**":
                result = left**right
                return result
            if expr.op == "<":
                return left < right
            if expr.op == "<=":
                return left <= right
            if expr.op == ">":
                return left > right
            if expr.op == ">=":
                return left >= right
            if expr.op == "==":
                return left == right
            if expr.op == "/=":
                return left != right
            if expr.op == ".and.":
                return bool(left and right)
            if expr.op == ".or.":
                return bool(left or right)
        except (OverflowError, ZeroDivisionError, TypeError):
            return None
    if isinstance(expr, FuncRef) and expr.intrinsic:
        args = [eval_const(a, env) for a in expr.args]
        if any(a is None for a in args):
            return None
        try:
            if expr.name in ("abs", "iabs", "dabs"):
                return abs(args[0])
            if expr.name in ("max", "max0", "amax1", "dmax1"):
                return max(args)
            if expr.name in ("min", "min0", "amin1", "dmin1"):
                return min(args)
            if expr.name in ("mod", "amod", "dmod"):
                a, b = args
                if b == 0:
                    return None
                import math

                return a - b * int(a / b) if isinstance(a, int) else math.fmod(a, b)
            if expr.name in ("int", "ifix", "idint"):
                return int(args[0])
            if expr.name in ("float", "real", "dble", "sngl"):
                return float(args[0])
        except (TypeError, ValueError):
            return None
    return None


def _meet(a: Dict[str, object], b: Dict[str, object]) -> Dict[str, object]:
    out: Dict[str, object] = {}
    for name in set(a) | set(b):
        if name not in a:
            out[name] = b[name]
        elif name not in b:
            out[name] = a[name]
        elif a[name] is _NAC or b[name] is _NAC or a[name] != b[name]:
            out[name] = _NAC
        else:
            out[name] = a[name]
    return out


def propagate_constants(
    unit: ProcedureUnit,
    cfg: Optional[CFG] = None,
    effects: Optional[SideEffects] = None,
    inherited: Optional[Mapping[str, Value]] = None,
) -> ConstantMap:
    """Run constant propagation over ``unit``.

    ``inherited`` supplies interprocedural constants (formals or COMMON
    variables constant at every call site); PARAMETER constants are always
    included.
    """

    effects = effects or ConservativeEffects()
    cfg = cfg or build_cfg(unit)
    table: SymbolTable = unit.symtab  # type: ignore[assignment]

    boundary: Dict[str, object] = {}
    for sym in table.symbols.values():
        if sym.storage == PARAM and sym.const_value is not None:
            value = eval_const(sym.const_value, {})
            if value is not None:
                boundary[sym.name] = value
    for name, value in (inherited or {}).items():
        boundary.setdefault(name.lower(), value)

    envs: Dict[int, Dict[str, object]] = {ENTRY: boundary}
    out_envs: Dict[int, Dict[str, object]] = {ENTRY: boundary}
    from collections import deque

    work = deque(cfg.nodes())
    while work:
        n = work.popleft()
        preds = cfg.pred.get(n, set())
        visited_preds = [p for p in preds if p in out_envs]
        if n == ENTRY:
            env = dict(boundary)
        elif visited_preds:
            env = out_envs[visited_preds[0]]
            for p in visited_preds[1:]:
                env = _meet(env, out_envs[p])
        else:
            env = {}
        envs[n] = env
        new_out = _transfer(cfg.stmts.get(n), env, table, effects)
        if out_envs.get(n) != new_out:
            out_envs[n] = new_out
            for s in cfg.succ.get(n, ()):
                work.append(s)

    result = ConstantMap()
    for sid in cfg.stmts:
        env = envs.get(sid, {})
        result.entry[sid] = {
            name: value  # type: ignore[misc]
            for name, value in env.items()
            if value is not _NAC
        }
    return result


def _transfer(
    st: Optional[object],
    env: Dict[str, object],
    table: SymbolTable,
    effects: SideEffects,
) -> Dict[str, object]:
    if st is None:
        return dict(env)
    out = dict(env)
    const_view = {k: v for k, v in env.items() if v is not _NAC}
    if isinstance(st, Assign):
        if isinstance(st.target, VarRef):
            value = eval_const(st.expr, const_view)
            out[st.target.name] = value if value is not None else _NAC
    elif isinstance(st, DoLoop):
        # The induction variable varies; only its start value would be
        # constant and only on the first trip, so it is not a constant.
        out[st.var] = _NAC
    elif isinstance(st, CallStmt):
        for name in effects.mod(st.name, st.args, table):
            out[name] = _NAC
    elif isinstance(st, IOStmt) and st.kind == "read":
        for item in st.items:
            if isinstance(item, VarRef):
                out[item.name] = _NAC
    return out
