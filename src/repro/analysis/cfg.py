"""Statement-level control-flow graph.

Ped's analyses operate at statement granularity (each statement is a
dependence-graph vertex), so the CFG does too: every executable statement is
one node, identified by its ``sid``; two synthetic nodes ``ENTRY`` and
``EXIT`` bracket the procedure.

Structured control flow (block IF, DO) contributes edges directly; ``GOTO``
edges resolve through the statement-label map.  A DO loop's header node is
the :class:`DoLoop` statement itself: it has an edge into the body (taken
when the trip count is positive) and an edge to the loop exit (zero-trip
test), and the last body statement has a back edge to the header.

Dominators and postdominators are computed with the classic iterative
algorithm; the postdominator tree drives control-dependence construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..fortran.ast_nodes import (
    DoLoop,
    GotoStmt,
    If,
    ProcedureUnit,
    ReturnStmt,
    Stmt,
    StopStmt,
    walk_statements,
)

ENTRY = -1
EXIT = -2


@dataclass
class CFG:
    """Control-flow graph of one procedure.

    ``succ``/``pred`` map node ids to successor/predecessor id sets.  Node
    ids are statement ``sid`` values plus :data:`ENTRY` and :data:`EXIT`.
    ``stmts`` maps sids back to statement nodes.
    """

    unit: ProcedureUnit
    succ: Dict[int, Set[int]] = field(default_factory=dict)
    pred: Dict[int, Set[int]] = field(default_factory=dict)
    stmts: Dict[int, Stmt] = field(default_factory=dict)

    def nodes(self) -> List[int]:
        return [ENTRY, *sorted(self.stmts), EXIT]

    def add_edge(self, a: int, b: int) -> None:
        self.succ.setdefault(a, set()).add(b)
        self.pred.setdefault(b, set()).add(a)

    # -- dominance ---------------------------------------------------------

    def dominators(self) -> Dict[int, Set[int]]:
        """Classic iterative dominator sets (including the node itself)."""

        return _dominance(self.nodes(), self.pred, ENTRY)

    def postdominators(self) -> Dict[int, Set[int]]:
        """Postdominator sets, computed on the reversed graph from EXIT."""

        return _dominance(self.nodes(), self.succ, EXIT)

    def immediate_postdominators(self) -> Dict[int, Optional[int]]:
        """Map each node to its immediate postdominator (None for EXIT)."""

        pdom = self.postdominators()
        ipdom: Dict[int, Optional[int]] = {}
        for n in self.nodes():
            strict = pdom[n] - {n}
            ipdom[n] = None
            # The immediate postdominator is the strict postdominator that
            # is postdominated by every other strict postdominator.
            for cand in strict:
                if all(cand in pdom[other] or other == cand for other in strict):
                    ipdom[n] = cand
                    break
        return ipdom

    def reverse_postorder(self) -> List[int]:
        """Reverse postorder from ENTRY (good iteration order forward)."""

        seen: Set[int] = set()
        order: List[int] = []

        def dfs(n: int) -> None:
            seen.add(n)
            for s in sorted(self.succ.get(n, ())):
                if s not in seen:
                    dfs(s)
            order.append(n)

        dfs(ENTRY)
        return list(reversed(order))


def _dominance(
    nodes: List[int], edges_in: Dict[int, Set[int]], root: int
) -> Dict[int, Set[int]]:
    all_nodes = set(nodes)
    dom: Dict[int, Set[int]] = {n: set(all_nodes) for n in nodes}
    dom[root] = {root}
    changed = True
    while changed:
        changed = False
        for n in nodes:
            if n == root:
                continue
            preds = [p for p in edges_in.get(n, ()) if p in all_nodes]
            if preds:
                new: Set[int] = set.intersection(*(dom[p] for p in preds))
            else:
                new = set()
            new = new | {n}
            if new != dom[n]:
                dom[n] = new
                changed = True
    return dom


class _Builder:
    def __init__(self, unit: ProcedureUnit) -> None:
        self.cfg = CFG(unit)
        self.labels: Dict[int, int] = {}
        for st in walk_statements(unit.body):
            self.cfg.stmts[st.sid] = st
            if st.label is not None:
                self.labels[st.label] = st.sid

    def build(self) -> CFG:
        unit = self.cfg.unit
        first = self._first_of(unit.body, EXIT)
        self.cfg.add_edge(ENTRY, first)
        self._build_block(unit.body, EXIT)
        # Make EXIT reachable in succ/pred maps even for empty bodies.
        self.cfg.succ.setdefault(EXIT, set())
        self.cfg.pred.setdefault(ENTRY, set())
        return self.cfg

    def _first_of(self, body: List[Stmt], follow: int) -> int:
        return body[0].sid if body else follow

    def _build_block(self, body: List[Stmt], follow: int) -> None:
        for i, st in enumerate(body):
            nxt = body[i + 1].sid if i + 1 < len(body) else follow
            self._build_stmt(st, nxt)

    def _build_stmt(self, st: Stmt, nxt: int) -> None:
        if isinstance(st, DoLoop):
            body_first = self._first_of(st.body, st.sid)
            self.cfg.add_edge(st.sid, body_first)
            self.cfg.add_edge(st.sid, nxt)  # zero-trip exit
            self._build_block(st.body, st.sid)  # back edge from last stmt
            return
        if isinstance(st, If):
            has_else = any(cond is None for cond, _ in st.arms)
            for cond, arm_body in st.arms:
                arm_first = self._first_of(arm_body, nxt)
                self.cfg.add_edge(st.sid, arm_first)
                self._build_block(arm_body, nxt)
            if not has_else:
                self.cfg.add_edge(st.sid, nxt)
            return
        if isinstance(st, GotoStmt):
            target = self.labels.get(st.target)
            if target is None:
                # Unresolved label: fall through so analyses stay sound-ish
                # rather than crashing on partial programs.
                self.cfg.add_edge(st.sid, nxt)
            else:
                self.cfg.add_edge(st.sid, target)
            return
        if isinstance(st, (ReturnStmt, StopStmt)):
            self.cfg.add_edge(st.sid, EXIT)
            return
        self.cfg.add_edge(st.sid, nxt)


def build_cfg(unit: ProcedureUnit) -> CFG:
    """Build the statement-level CFG of ``unit`` (sids must be assigned)."""

    return _Builder(unit).build()
