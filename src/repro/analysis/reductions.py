"""Reduction recognition.

"Five of the programs contain sum reductions which go unrecognized by Ped.
For example, computing the sum of all the elements of an array."  The
experiences paper lists reduction recognition as a missing analysis users
wanted; this module implements it as the enhancement the paper proposes.

A *scalar reduction* in loop ``L`` is ``s = s ⊕ e`` (or ``s = e ⊕ s`` for
commutative ⊕) where:

* ``s`` is a scalar assigned only by reduction updates of the same ⊕
  inside ``L``;
* no other statement of ``L`` reads ``s``;
* ``e`` does not mention ``s``.

``min``/``max`` reductions through intrinsics (``s = max(s, e)``) and the
guarded form ``if (e .gt. s) s = e`` are recognised too.  A recognised
reduction removes the loop-carried recurrence on ``s`` for parallelization
purposes (the rewrite uses per-processor partial results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..fortran.ast_nodes import (
    Assign,
    BinOp,
    DoLoop,
    FuncRef,
    If,
    VarRef,
    walk_expr,
    walk_statements,
)
from ..fortran.symbols import SymbolTable
from .defuse import ConservativeEffects, SideEffects, stmt_defs, stmt_uses


@dataclass
class Reduction:
    """One recognised reduction: variable, operator and update sites."""

    var: str
    op: str  # '+', '*', 'max', 'min'
    sids: List[int] = field(default_factory=list)


_MINMAX = {"max": "max", "amax1": "max", "max0": "max", "dmax1": "max",
           "min": "min", "amin1": "min", "min0": "min", "dmin1": "min"}


def _expr_mentions(expr, name: str) -> bool:
    for node in walk_expr(expr):
        if isinstance(node, VarRef) and node.name == name:
            return True
    return False


def _flatten_chain(expr, ops) -> list:
    """Flatten a left-leaning chain of ``ops`` into (sign, term) pairs.

    ``s + a - b + c`` yields [(+1, s), (+1, a), (−1, b), (+1, c)].  For
    multiplicative chains the sign slot is always +1.
    """

    if isinstance(expr, BinOp) and expr.op in ops:
        left = _flatten_chain(expr.left, ops)
        right = _flatten_chain(expr.right, ops)
        if expr.op == "-":
            right = [(-s, t) for s, t in right]
        return left + right
    return [(1, expr)]


def _classify_update(st: Assign) -> Optional[tuple]:
    """Return ``(var, op)`` if ``st`` is a reduction-shaped update.

    Handles chained operands: ``s = s + a + b`` and ``s = s - a + b`` are
    sum reductions; ``p = p * a * b`` a product reduction; ``m = max(m, e)``
    and the guarded IF form are recognised by the caller.
    """

    if not isinstance(st.target, VarRef):
        return None
    name = st.target.name
    e = st.expr
    if isinstance(e, BinOp) and e.op in ("+", "-"):
        terms = _flatten_chain(e, ("+", "-"))
        var_terms = [
            (s, t)
            for s, t in terms
            if isinstance(t, VarRef) and t.name == name
        ]
        rest = [t for _, t in terms if not (isinstance(t, VarRef) and t.name == name)]
        if (
            len(var_terms) == 1
            and var_terms[0][0] == 1
            and not any(_expr_mentions(t, name) for t in rest)
        ):
            return name, "+"
        return None
    if isinstance(e, BinOp) and e.op == "*":
        terms = _flatten_chain(e, ("*",))
        var_terms = [
            t for _, t in terms if isinstance(t, VarRef) and t.name == name
        ]
        rest = [t for _, t in terms if not (isinstance(t, VarRef) and t.name == name)]
        if len(var_terms) == 1 and not any(_expr_mentions(t, name) for t in rest):
            return name, "*"
        return None
    if isinstance(e, FuncRef) and e.name in _MINMAX and len(e.args) == 2:
        op = _MINMAX[e.name]
        for i in (0, 1):
            arg = e.args[i]
            other = e.args[1 - i]
            if isinstance(arg, VarRef) and arg.name == name:
                if not _expr_mentions(other, name):
                    return name, op
        return None
    return None


def _classify_guarded(st: If) -> Optional[tuple]:
    """Recognise ``if (e .gt. s) s = e`` (max) / ``.lt.`` (min)."""

    if st.block or len(st.arms) != 1:
        return None
    cond, body = st.arms[0]
    if cond is None or len(body) != 1 or not isinstance(body[0], Assign):
        return None
    inner = body[0]
    if not isinstance(inner.target, VarRef):
        return None
    name = inner.target.name
    if _expr_mentions(inner.expr, name):
        return None
    if not isinstance(cond, BinOp) or cond.op not in ("<", "<=", ">", ">="):
        return None
    sides = (cond.left, cond.right)
    var_side = None
    for i, side in enumerate(sides):
        if isinstance(side, VarRef) and side.name == name:
            var_side = i
    if var_side is None:
        return None
    # s on left with '<' means a new larger value replaces s: max.
    greater = (cond.op in ("<", "<=")) == (var_side == 0)
    return name, ("max" if greater else "min"), inner.sid


def find_reductions(
    loop: DoLoop,
    table: SymbolTable,
    effects: Optional[SideEffects] = None,
) -> List[Reduction]:
    """All scalar reductions of ``loop`` satisfying the safety conditions."""

    effects = effects or ConservativeEffects()
    updates: Dict[str, Reduction] = {}
    bad: Set[str] = set()
    update_sids: Dict[str, Set[int]] = {}

    candidates: Dict[int, tuple] = {}
    for st in walk_statements(loop.body):
        if isinstance(st, Assign):
            got = _classify_update(st)
            if got is not None:
                candidates[st.sid] = got
        elif isinstance(st, If) and not st.block:
            got3 = _classify_guarded(st)
            if got3 is not None:
                name, op, inner_sid = got3
                candidates[inner_sid] = (name, op)
                # The IF condition reads the variable; that read belongs to
                # the guarded update, mark it as part of the candidate.
                candidates[st.sid] = (name, op)

    for st in walk_statements(loop.body):
        sid = st.sid
        cand = candidates.get(sid)
        must, may = stmt_defs(st, table, effects)
        uses = stmt_uses(st, table, effects)
        for name in list(updates) + [c[0] for c in candidates.values()]:
            if cand is not None and cand[0] == name:
                continue
            if name in may or name in uses:
                bad.add(name)
        if cand is None:
            continue
        name, op = cand[0], cand[1]
        red = updates.get(name)
        if red is None:
            updates[name] = Reduction(name, op, [sid])
            update_sids[name] = {sid}
        elif red.op != op:
            bad.add(name)
        else:
            red.sids.append(sid)
            update_sids[name].add(sid)

    out = [r for r in updates.values() if r.var not in bad and r.var != loop.var]
    for r in out:
        r.sids.sort()
    return sorted(out, key=lambda r: r.var)
