"""Definitions, uses, reaching definitions and def-use chains.

Defs and uses are computed per statement at the granularity of *names*
(scalar variables and whole arrays).  Array element accesses are *may*
defs/uses of the array name; the dependence analyzer refines those with
subscript tests.  Procedure calls are handled through a pluggable
:class:`SideEffects` provider: the default :class:`ConservativeEffects`
assumes a call may read and write every actual argument and every COMMON
variable (what Ped must assume without interprocedural analysis); the
interprocedural package supplies a precise provider backed by MOD/REF
sets, which is exactly the "interprocedural side-effect analysis" lever of
Table 3 in the experiences paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..fortran.ast_nodes import (
    ArrayRef,
    Assign,
    CallStmt,
    DoLoop,
    Expr,
    FuncRef,
    If,
    IOStmt,
    ProcedureUnit,
    Stmt,
    VarRef,
    walk_expr,
    walk_statements,
)
from ..fortran.symbols import COMMON, SymbolTable
from .cfg import CFG, ENTRY, build_cfg
from .dataflow import (
    FORWARD,
    BACKWARD,
    MAY,
    DataFlowProblem,
    gen_kill_transfer,
    solve_with_out,
)

#: A definition site: (statement id, variable name). ENTRY models the
#: values flowing in from outside the procedure.
DefSite = Tuple[int, str]


class SideEffects:
    """Interface for call side effects.

    ``mod``/``ref`` return the sets of caller-visible names the callee may
    modify / may read, given the call's actual arguments.  ``kill`` returns
    the names the callee *must* define on every path before any use —
    empty unless interprocedural kill analysis is available.
    """

    def mod(self, callee: str, args: List[Expr], table: SymbolTable) -> Set[str]:
        raise NotImplementedError

    def ref(self, callee: str, args: List[Expr], table: SymbolTable) -> Set[str]:
        raise NotImplementedError

    def kill(self, callee: str, args: List[Expr], table: SymbolTable) -> Set[str]:
        return set()


class ConservativeEffects(SideEffects):
    """Worst-case assumption: every actual and every COMMON is touched."""

    def _actuals(self, args: List[Expr], table: SymbolTable) -> Set[str]:
        from ..fortran.symbols import PARAM

        names: Set[str] = set()
        for arg in args:
            if isinstance(arg, VarRef) and arg.name != "*":
                sym = table.get(arg.name)
                # PARAMETER constants pass by value of a temporary; no
                # callee can modify them.
                if sym is not None and sym.storage == PARAM:
                    continue
                names.add(arg.name)
            elif isinstance(arg, ArrayRef):
                names.add(arg.name)
        return names

    def _commons(self, table: SymbolTable) -> Set[str]:
        return {s.name for s in table.symbols.values() if s.storage == COMMON}

    def mod(self, callee: str, args: List[Expr], table: SymbolTable) -> Set[str]:
        return self._actuals(args, table) | self._commons(table)

    def ref(self, callee: str, args: List[Expr], table: SymbolTable) -> Set[str]:
        names = self._commons(table)
        for arg in args:
            for sub in walk_expr_args(arg):
                names.add(sub)
        return names


def walk_expr_args(expr: Expr) -> Set[str]:
    """All variable/array names read anywhere inside ``expr``."""

    names: Set[str] = set()
    for node in walk_expr(expr):
        if isinstance(node, VarRef) and node.name != "*":
            names.add(node.name)
        elif isinstance(node, (ArrayRef, FuncRef)):
            if isinstance(node, ArrayRef):
                names.add(node.name)
    return names


def _expr_uses(expr: Expr, effects: SideEffects, table: SymbolTable) -> Set[str]:
    uses: Set[str] = set()
    for node in walk_expr(expr):
        if isinstance(node, VarRef) and node.name != "*":
            uses.add(node.name)
        elif isinstance(node, ArrayRef):
            uses.add(node.name)
        elif isinstance(node, FuncRef) and not node.intrinsic:
            # A user function may read commons too.
            uses |= effects.ref(node.name, node.args, table)
    return uses


def stmt_defs(
    st: Stmt,
    table: SymbolTable,
    effects: Optional[SideEffects] = None,
) -> Tuple[Set[str], Set[str]]:
    """Return ``(must_defs, may_defs)`` of names for one statement.

    ``may_defs`` includes ``must_defs``.  Array element assignments are may
    defs (they do not kill the whole array); scalar assignments are must
    defs.
    """

    effects = effects or ConservativeEffects()
    must: Set[str] = set()
    may: Set[str] = set()
    if isinstance(st, Assign):
        if isinstance(st.target, VarRef):
            must.add(st.target.name)
        elif isinstance(st.target, ArrayRef):
            may.add(st.target.name)
    elif isinstance(st, DoLoop):
        must.add(st.var)
    elif isinstance(st, CallStmt):
        may |= effects.mod(st.name, st.args, table)
        # Interprocedural kill analysis upgrades some may-defs to must-defs:
        # the callee assigns these on every path, killing the prior value.
        must |= effects.kill(st.name, st.args, table) & may
    elif isinstance(st, IOStmt) and st.kind == "read":
        for item in st.items:
            if isinstance(item, VarRef) and item.name != "*":
                must.add(item.name)
            elif isinstance(item, ArrayRef):
                may.add(item.name)
    # Function calls with side effects inside expressions: treated as pure
    # reads here; Ped relies on MOD analysis to catch writer functions, and
    # our workloads call writer procedures only via CALL.
    may |= must
    return must, may


def stmt_uses(
    st: Stmt,
    table: SymbolTable,
    effects: Optional[SideEffects] = None,
) -> Set[str]:
    """Names possibly read by one statement (subscripts included)."""

    effects = effects or ConservativeEffects()
    uses: Set[str] = set()
    if isinstance(st, Assign):
        uses |= _expr_uses(st.expr, effects, table)
        if isinstance(st.target, ArrayRef):
            for sub in st.target.subs:
                uses |= _expr_uses(sub, effects, table)
    elif isinstance(st, DoLoop):
        for e in (st.start, st.end, st.step):
            if e is not None:
                uses |= _expr_uses(e, effects, table)
    elif isinstance(st, If):
        for cond, _ in st.arms:
            if cond is not None:
                uses |= _expr_uses(cond, effects, table)
    elif isinstance(st, CallStmt):
        uses |= effects.ref(st.name, st.args, table)
        for arg in st.args:
            uses |= _expr_uses(arg, effects, table)
    elif isinstance(st, IOStmt):
        for e in st.spec:
            uses |= _expr_uses(e, effects, table)
        if st.kind != "read":
            for e in st.items:
                uses |= _expr_uses(e, effects, table)
        else:
            for e in st.items:
                if isinstance(e, ArrayRef):
                    for sub in e.subs:
                        uses |= _expr_uses(sub, effects, table)
    return uses


@dataclass
class DefUse:
    """Reaching definitions, def-use/use-def chains and liveness.

    ``ud[sid]`` maps each name used by statement ``sid`` to the def sites
    reaching that use; ``du[(sid, name)]`` is the set of statement ids whose
    use of ``name`` the definition at ``sid`` can reach.  ``live_in`` /
    ``live_out`` give liveness per statement.  ENTRY acts as the definition
    site of everything flowing in from outside.
    """

    cfg: CFG
    table: SymbolTable
    must_defs: Dict[int, Set[str]] = field(default_factory=dict)
    may_defs: Dict[int, Set[str]] = field(default_factory=dict)
    uses: Dict[int, Set[str]] = field(default_factory=dict)
    reach_in: Dict[int, FrozenSet[DefSite]] = field(default_factory=dict)
    reach_out: Dict[int, FrozenSet[DefSite]] = field(default_factory=dict)
    ud: Dict[int, Dict[str, Set[int]]] = field(default_factory=dict)
    du: Dict[DefSite, Set[int]] = field(default_factory=dict)
    live_in: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    live_out: Dict[int, FrozenSet[str]] = field(default_factory=dict)


def compute_defuse(
    unit: ProcedureUnit,
    cfg: Optional[CFG] = None,
    effects: Optional[SideEffects] = None,
) -> DefUse:
    """Compute the full def-use summary of a procedure."""

    effects = effects or ConservativeEffects()
    cfg = cfg or build_cfg(unit)
    table: SymbolTable = unit.symtab  # type: ignore[assignment]
    result = DefUse(cfg, table)

    all_names: Set[str] = set(table.symbols)
    gen: Dict[int, Set[DefSite]] = {ENTRY: {(ENTRY, v) for v in all_names}}
    kill: Dict[int, Set[DefSite]] = {}
    all_sites_by_var: Dict[str, Set[DefSite]] = {v: {(ENTRY, v)} for v in all_names}

    for sid, st in cfg.stmts.items():
        must, may = stmt_defs(st, table, effects)
        result.must_defs[sid] = must
        result.may_defs[sid] = may
        result.uses[sid] = stmt_uses(st, table, effects)
        for v in may:
            all_sites_by_var.setdefault(v, set()).add((sid, v))

    for sid, st in cfg.stmts.items():
        gen[sid] = {(sid, v) for v in result.may_defs[sid]}
        kill[sid] = set()
        for v in result.must_defs[sid]:
            kill[sid] |= all_sites_by_var.get(v, set()) - {(sid, v)}

    problem = DataFlowProblem(
        FORWARD,
        MAY,
        gen_kill_transfer(gen, kill),
        boundary=frozenset(gen[ENTRY]),
    )
    reach_in, reach_out = solve_with_out(cfg, problem)
    result.reach_in = reach_in
    result.reach_out = reach_out

    for sid, st in cfg.stmts.items():
        chains: Dict[str, Set[int]] = {}
        for name in result.uses[sid]:
            sites = {d for (d, v) in reach_in[sid] if v == name}
            chains[name] = sites
            for d in sites:
                result.du.setdefault((d, name), set()).add(sid)
        result.ud[sid] = chains

    # Liveness (backward may problem): gen = uses, kill = must defs.
    live_gen = {sid: frozenset(result.uses[sid]) for sid in cfg.stmts}
    live_kill = {sid: frozenset(result.must_defs[sid]) for sid in cfg.stmts}
    live_problem = DataFlowProblem(
        BACKWARD,
        MAY,
        gen_kill_transfer(live_gen, live_kill),
        boundary=frozenset(),
    )
    live_out, live_in = solve_with_out(cfg, live_problem)
    result.live_in = live_in
    result.live_out = live_out
    return result


def scalar_defs_in(body: List[Stmt], table: SymbolTable) -> Set[str]:
    """Scalar names assigned anywhere in a statement list (lexically)."""

    out: Set[str] = set()
    for st in walk_statements(body):
        if isinstance(st, Assign) and isinstance(st.target, VarRef):
            out.add(st.target.name)
        elif isinstance(st, DoLoop):
            out.add(st.var)
        elif isinstance(st, IOStmt) and st.kind == "read":
            for item in st.items:
                if isinstance(item, VarRef):
                    out.add(item.name)
    return out
