"""Symbolic (affine) expression algebra.

Dependence testing needs subscripts as *linear forms* over loop induction
variables plus symbolic unknowns:  ``a(2*i + n - 1)`` becomes
``2·i + 1·n + (-1)``.  The :class:`Linear` class represents
``Σ coeff·atom + const`` with exact :class:`fractions.Fraction` arithmetic.

Atoms are usually variable names.  Nonlinear subterms (``n*n``, ``ip(j)``,
function results) are folded into *opaque atoms* keyed by their printed
text, so two occurrences of the same nonlinear term still cancel in
differences — the cheap flavour of symbolic analysis that the experiences
paper reports as indispensable ("symbolic terms in subscript expressions
are a key limiting factor").

The paper's three-pronged symbolics programme maps to:

1. sophisticated symbolic analysis — this module plus
   :mod:`repro.analysis.constants`;
2. partial evaluation — binding PARAMETER values and interprocedural
   constants before building linear forms;
3. user assertions — :mod:`repro.assertions` supplies extra facts consulted
   by range queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Optional, Tuple

from ..fortran.ast_nodes import (
    ArrayRef,
    BinOp,
    Expr,
    FuncRef,
    Num,
    UnOp,
    VarRef,
)
from ..fortran.printer import expr_to_str
from ..fortran.symbols import SymbolTable


@dataclass(frozen=True)
class Linear:
    """An affine form ``Σ coeffs[atom]·atom + const`` (exact arithmetic).

    Immutable; arithmetic returns new instances.  Zero coefficients are
    never stored.
    """

    coeffs: Tuple[Tuple[str, Fraction], ...] = ()
    const: Fraction = Fraction(0)

    # -- constructors -----------------------------------------------------

    @staticmethod
    def constant(value) -> "Linear":
        return Linear((), Fraction(value))

    @staticmethod
    def atom(name: str, coeff=1) -> "Linear":
        c = Fraction(coeff)
        if c == 0:
            return Linear()
        return Linear(((name, c),), Fraction(0))

    @staticmethod
    def _from_dict(coeffs: Mapping[str, Fraction], const: Fraction) -> "Linear":
        items = tuple(sorted((k, v) for k, v in coeffs.items() if v != 0))
        return Linear(items, const)

    def as_dict(self) -> Dict[str, Fraction]:
        return dict(self.coeffs)

    # -- queries -----------------------------------------------------------

    def coeff(self, name: str) -> Fraction:
        for k, v in self.coeffs:
            if k == name:
                return v
        return Fraction(0)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def constant_value(self) -> Optional[Fraction]:
        return self.const if self.is_constant else None

    def int_value(self) -> Optional[int]:
        if self.is_constant and self.const.denominator == 1:
            return int(self.const)
        return None

    def atoms(self) -> Tuple[str, ...]:
        return tuple(k for k, _ in self.coeffs)

    def drop(self, names) -> "Linear":
        """Remove the given atoms (used to project out loop indices)."""

        d = {k: v for k, v in self.coeffs if k not in names}
        return Linear._from_dict(d, self.const)

    def restrict(self, names) -> "Linear":
        """Keep only the given atoms, dropping the constant."""

        d = {k: v for k, v in self.coeffs if k in names}
        return Linear._from_dict(d, Fraction(0))

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "Linear") -> "Linear":
        d = dict(self.coeffs)
        for k, v in other.coeffs:
            d[k] = d.get(k, Fraction(0)) + v
        return Linear._from_dict(d, self.const + other.const)

    def __sub__(self, other: "Linear") -> "Linear":
        return self + other.scale(-1)

    def scale(self, factor) -> "Linear":
        f = Fraction(factor)
        if f == 0:
            return Linear()
        d = {k: v * f for k, v in self.coeffs}
        return Linear._from_dict(d, self.const * f)

    def __neg__(self) -> "Linear":
        return self.scale(-1)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for k, v in self.coeffs:
            parts.append(f"{v}*{k}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


#: Environment mapping variable names to known Linear values (from constant
#: propagation, PARAMETER statements or interprocedural constants).
Env = Mapping[str, Linear]


def linear_of_expr(
    expr: Expr,
    table: Optional[SymbolTable] = None,
    env: Optional[Env] = None,
) -> Linear:
    """Convert ``expr`` to a :class:`Linear` form.

    Variables resolve through ``env`` then PARAMETER constants, otherwise
    become atoms.  Nonlinear subterms become opaque atoms spelled
    ``@<source text>`` so identical terms cancel in differences.
    Never fails: everything unanalyzable is opaque.
    """

    env = env or {}
    if isinstance(expr, Num):
        if isinstance(expr.value, int):
            return Linear.constant(expr.value)
        if float(expr.value).is_integer():
            return Linear.constant(int(expr.value))
        return _opaque(expr)
    if isinstance(expr, VarRef):
        if expr.name in env:
            return env[expr.name]
        if table is not None:
            const = table.parameter_value(expr.name)
            if const is not None:
                return linear_of_expr(const, table, env)
        return Linear.atom(expr.name)
    if isinstance(expr, UnOp):
        if expr.op == "-":
            return -linear_of_expr(expr.operand, table, env)
        if expr.op == "+":
            return linear_of_expr(expr.operand, table, env)
        return _opaque(expr)
    if isinstance(expr, BinOp):
        left = linear_of_expr(expr.left, table, env)
        right = linear_of_expr(expr.right, table, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left.is_constant:
                return right.scale(left.const)
            if right.is_constant:
                return left.scale(right.const)
            return _opaque(expr)
        if expr.op == "/":
            if right.is_constant and right.const != 0:
                scaled = left.scale(Fraction(1) / right.const)
                # Integer division only commutes with scaling when exact.
                if all(v.denominator == 1 for _, v in scaled.coeffs) and (
                    scaled.const.denominator == 1
                ):
                    return scaled
            return _opaque(expr)
        if expr.op == "**":
            if right.is_constant and right.const == 1:
                return left
            if left.is_constant and right.is_constant:
                base = left.const
                exp = right.const
                if exp.denominator == 1 and exp >= 0:
                    return Linear.constant(base ** int(exp))
            return _opaque(expr)
        return _opaque(expr)
    if isinstance(expr, (ArrayRef, FuncRef)):
        return _opaque(expr)
    return _opaque(expr)


def _opaque(expr: Expr) -> Linear:
    return Linear.atom("@" + expr_to_str(expr))


def affine(
    expr: Expr,
    index_vars,
    table: Optional[SymbolTable] = None,
    env: Optional[Env] = None,
) -> Optional[Tuple[Dict[str, int], Linear]]:
    """Split ``expr`` into integer coefficients of ``index_vars`` plus rest.

    Returns ``(coeffs, remainder)`` where ``coeffs[var]`` is the integer
    coefficient of each index variable appearing in ``expr`` and
    ``remainder`` is the symbolic part with the index variables removed
    (may still contain unknown atoms).  Returns ``None`` when some index
    variable has a non-integer coefficient or appears inside an opaque
    atom — the subscript is then not affine in the loop indices and
    dependence testing must be conservative.
    """

    lin = linear_of_expr(expr, table, env)
    coeffs: Dict[str, int] = {}
    index_set = set(index_vars)
    for name, value in lin.coeffs:
        if name in index_set:
            if value.denominator != 1:
                return None
            coeffs[name] = int(value)
        elif name.startswith("@"):
            # An index variable hidden inside a nonlinear term?
            body = name[1:]
            for iv in index_set:
                if _mentions(body, iv):
                    return None
    remainder = lin.drop(index_set)
    return coeffs, remainder


def _mentions(text: str, name: str) -> bool:
    """Whole-word search of ``name`` inside rendered expression text."""

    i = 0
    n = len(name)
    while True:
        i = text.find(name, i)
        if i < 0:
            return False
        before_ok = i == 0 or not (text[i - 1].isalnum() or text[i - 1] == "_")
        j = i + n
        after_ok = j >= len(text) or not (text[j].isalnum() or text[j] == "_")
        if before_ok and after_ok:
            return True
        i += 1
