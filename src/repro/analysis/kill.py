"""Scalar kill analysis for loops.

"A critical contribution of scalar data-flow analysis is recognizing
scalars that are killed, or redefined, on every iteration of a loop and may
be made private, thus eliminating dependences."  (Experiences paper, §4.)

A scalar ``s`` is *privatizable* in loop ``L`` when every use of ``s``
inside ``L``'s body reads a value assigned earlier in the *same* iteration
— i.e. ``s`` has no upward-exposed use in the body.  Such a scalar carries
no cross-iteration flow and the loop-carried true/anti/output dependences
on it can be discarded by giving each iteration its own copy.

If ``s`` is additionally live after the loop, privatization needs a
*last-value* copy (lastprivate); :func:`privatizable_scalars` reports that
distinction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..fortran.ast_nodes import DoLoop, ProcedureUnit, Stmt, walk_statements
from ..fortran.symbols import SymbolTable
from .defuse import (
    ConservativeEffects,
    DefUse,
    SideEffects,
    compute_defuse,
    stmt_defs,
    stmt_uses,
)


def upward_exposed(
    loop: DoLoop,
    table: SymbolTable,
    effects: Optional[SideEffects] = None,
) -> Set[str]:
    """Scalar names with an upward-exposed use in the loop body.

    Computed on the body's statement sequence with a backward pass over a
    *conservative* straight-line/structured approximation: a use is upward
    exposed unless a must-def of the same scalar appears on **every** path
    from the body start to the use.  Handles nested DO and IF structurally
    (no GOTO into/out of the body, which the parser's structured subset
    guarantees within loop bodies except for explicit GOTOs — any GOTO in
    the body makes the analysis bail out conservatively).
    """

    effects = effects or ConservativeEffects()
    if _has_goto(loop.body):
        # Conservative: every used scalar is upward exposed.
        exposed: Set[str] = set()
        for st in walk_statements(loop.body):
            exposed |= stmt_uses(st, table, effects)
        return exposed
    exposed, _ = _scan_block(loop.body, table, effects)
    return exposed


def _has_goto(body: List[Stmt]) -> bool:
    from ..fortran.ast_nodes import GotoStmt

    return any(isinstance(st, GotoStmt) for st in walk_statements(body))


def _scan_block(
    body: List[Stmt],
    table: SymbolTable,
    effects: SideEffects,
) -> tuple:
    """Return ``(exposed, must_defined)`` for a statement list.

    ``exposed`` — scalars read before any must-def along some path through
    the block; ``must_defined`` — scalars assigned on every path.
    """

    exposed: Set[str] = set()
    defined: Set[str] = set()
    for st in body:
        e, d = _scan_stmt(st, table, effects)
        exposed |= e - defined
        defined |= d
    return exposed, defined


def _scan_stmt(st: Stmt, table: SymbolTable, effects: SideEffects) -> tuple:
    from ..fortran.ast_nodes import DoLoop as _Do, If as _If

    if isinstance(st, _Do):
        # Header expressions evaluate once per entry; body may run 0 times.
        header_uses = stmt_uses(st, table, effects)
        body_exposed, _body_defined = _scan_block(st.body, table, effects)
        # Defs inside the loop are not guaranteed (zero-trip); the loop
        # variable itself is always assigned by the header, so body uses of
        # it are not upward exposed past this statement.
        return header_uses | (body_exposed - {st.var}), {st.var}
    if isinstance(st, _If):
        exposed: Set[str] = set(stmt_uses(st, table, effects))
        branch_defs: List[Set[str]] = []
        for _, arm in st.arms:
            e, d = _scan_block(arm, table, effects)
            exposed |= e
            branch_defs.append(d)
        has_else = any(cond is None for cond, _ in st.arms)
        if st.block and has_else and branch_defs:
            defined = set.intersection(*branch_defs)
        else:
            defined = set()
        return exposed, defined
    uses = stmt_uses(st, table, effects)
    must, _may = stmt_defs(st, table, effects)
    return uses, must


def killed_scalars(
    loop: DoLoop,
    table: SymbolTable,
    effects: Optional[SideEffects] = None,
) -> Set[str]:
    """Scalars assigned in the loop whose every use follows a same-iteration
    definition (i.e. the previous iteration's value is dead on entry)."""

    effects = effects or ConservativeEffects()
    assigned: Set[str] = set()
    used: Set[str] = set()
    for st in walk_statements(loop.body):
        must, _ = stmt_defs(st, table, effects)
        assigned |= {v for v in must if not table.ensure(v).is_array}
        used |= stmt_uses(st, table, effects)
    exposed = upward_exposed(loop, table, effects)
    return {v for v in assigned if v not in exposed}


@dataclass
class PrivatizableScalar:
    """One privatization opportunity for a scalar in a loop."""

    name: str
    needs_last_value: bool


def privatizable_scalars(
    loop: DoLoop,
    unit: ProcedureUnit,
    defuse: Optional[DefUse] = None,
    effects: Optional[SideEffects] = None,
) -> List[PrivatizableScalar]:
    """All scalars of ``loop`` that may be made private, with the
    lastprivate flag set when the scalar is live after the loop."""

    effects = effects or ConservativeEffects()
    table: SymbolTable = unit.symtab  # type: ignore[assignment]
    defuse = defuse or compute_defuse(unit, effects=effects)
    killed = killed_scalars(loop, table, effects)
    live_after = defuse.live_out.get(loop.sid, frozenset())
    body_sids = {st.sid for st in walk_statements(loop.body)}
    # live_out of the loop header excludes the body; approximate "live after
    # the loop" as live_out of the header node minus names only live in-body.
    out: List[PrivatizableScalar] = []
    for name in sorted(killed):
        if name == loop.var:
            continue
        out.append(PrivatizableScalar(name, name in live_after))
    del body_sids
    return out
