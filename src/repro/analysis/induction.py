"""Induction-variable recognition.

The *basic* induction variable of a DO loop is its control variable.
*Auxiliary* induction variables are scalars updated exactly once per
iteration by ``k = k ± c`` with ``c`` loop-invariant; they are affine in
the trip number and can be rewritten in terms of the basic variable
(induction-variable substitution), which removes the cross-iteration
scalar recurrence that otherwise serializes the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..fortran.ast_nodes import (
    Assign,
    DoLoop,
    VarRef,
    walk_statements,
)
from ..fortran.symbols import SymbolTable
from .defuse import ConservativeEffects, SideEffects, stmt_defs
from .symbolic import Linear, linear_of_expr


@dataclass
class InductionVar:
    """One recognised induction variable.

    ``step`` is the per-iteration increment as a :class:`Linear` form over
    loop-invariant atoms; ``basic`` is True for the DO control variable.
    """

    name: str
    step: Linear
    basic: bool
    update_sid: Optional[int] = None


def loop_invariant_names(loop: DoLoop, table: SymbolTable) -> Set[str]:
    """Names not (possibly) assigned anywhere inside the loop body."""

    effects = ConservativeEffects()
    assigned: Set[str] = {loop.var}
    for st in walk_statements(loop.body):
        _, may = stmt_defs(st, table, effects)
        assigned |= may
    return {name for name in table.symbols} - assigned


def induction_variables(
    loop: DoLoop,
    table: SymbolTable,
    effects: Optional[SideEffects] = None,
) -> List[InductionVar]:
    """Recognise the basic and auxiliary induction variables of ``loop``."""

    effects = effects or ConservativeEffects()
    step_expr = loop.step
    step_lin = (
        linear_of_expr(step_expr, table) if step_expr is not None else Linear.constant(1)
    )
    result = [InductionVar(loop.var, step_lin, True, loop.sid)]
    result.extend(auxiliary_inductions(loop, table, effects))
    return result


def auxiliary_inductions(
    loop: DoLoop,
    table: SymbolTable,
    effects: Optional[SideEffects] = None,
) -> List[InductionVar]:
    """Scalars updated exactly once per iteration by ``k = k ± c``.

    The update must be *unconditional* (top-level in the loop body, not
    under an IF) and the only assignment to the scalar in the loop, with a
    loop-invariant increment.
    """

    effects = effects or ConservativeEffects()
    invariant = loop_invariant_names(loop, table)

    assign_counts: Dict[str, int] = {}
    for st in walk_statements(loop.body):
        must, may = stmt_defs(st, table, effects)
        for name in may:
            assign_counts[name] = assign_counts.get(name, 0) + 1

    out: List[InductionVar] = []
    for st in loop.body:  # top level only: unconditional updates
        if not isinstance(st, Assign) or not isinstance(st.target, VarRef):
            continue
        name = st.target.name
        if name == loop.var or assign_counts.get(name, 0) != 1:
            continue
        step = _self_increment(st, name, table)
        if step is None:
            continue
        if not _linear_invariant(step, invariant):
            continue
        out.append(InductionVar(name, step, False, st.sid))
    return out


def _self_increment(st: Assign, name: str, table: SymbolTable) -> Optional[Linear]:
    """If ``st`` is ``name = name ± c`` return the Linear increment ``±c``."""

    lin = linear_of_expr(st.expr, table)
    from fractions import Fraction

    if lin.coeff(name) != Fraction(1):
        return None
    rest = lin.drop({name})
    # The increment must not mention the variable itself in opaque atoms.
    for atom in rest.atoms():
        if atom.startswith("@") and name in atom:
            return None
    return rest


def _linear_invariant(lin: Linear, invariant: Set[str]) -> bool:
    for atom in lin.atoms():
        base = atom[1:] if atom.startswith("@") else atom
        # Opaque atoms are conservative: require every identifier-looking
        # piece to be loop invariant.
        if atom.startswith("@"):
            return False
        if base not in invariant:
            return False
    return True
