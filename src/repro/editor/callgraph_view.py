"""Call-graph views.

"Several users wanted a graphical representation of the call graph,
rather than the current textual presentation.  A visual program
representation provides a much needed 'big picture' when working with a
large or unfamiliar program."

Two renderings:

* :func:`ascii_tree` — an indented caller→callee tree rooted at the main
  program (cycles and repeats are marked, not expanded), annotated with
  each unit's loop verdict summary and estimated cost share;
* :func:`to_dot` — Graphviz DOT text for real graphical display, nodes
  coloured by parallelization state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..interproc.program import ProgramAnalysis


def _unit_summary(pa: ProgramAnalysis, name: str) -> str:
    ua = pa.units.get(name)
    if ua is None:
        return ""
    total = len(ua.loops)
    par = len(ua.parallel_loops())
    if total == 0:
        return "no loops"
    return f"{par}/{total} loops parallelizable"


def ascii_tree(pa: ProgramAnalysis, costs: Optional[Dict[str, float]] = None) -> str:
    """Indented call tree with per-unit verdict annotations."""

    cg = pa.callgraph
    roots = cg.roots() or sorted(cg.units)
    lines: List[str] = []

    def visit(name: str, depth: int, path: Set[str]) -> None:
        summary = _unit_summary(pa, name)
        cost = ""
        if costs and name in costs:
            cost = f"  ~{costs[name]:.0f} cycles"
        marker = ""
        if name in path:
            lines.append("  " * depth + f"{name} (recursive)")
            return
        lines.append("  " * depth + f"{name}  [{summary}]{cost}{marker}")
        for callee in sorted(cg.callees.get(name, ())):
            visit(callee, depth + 1, path | {name})

    for root in roots:
        visit(root, 0, set())
    return "\n".join(lines)


def to_dot(pa: ProgramAnalysis) -> str:
    """Graphviz DOT rendering; green = all loops parallelizable, red =
    none, yellow = mixed, grey = loopless."""

    cg = pa.callgraph
    lines = ["digraph callgraph {", "  rankdir=TB;", "  node [shape=box];"]
    for name in sorted(cg.units):
        ua = pa.units.get(name)
        if ua is None or not ua.loops:
            color = "lightgrey"
        else:
            par = len(ua.parallel_loops())
            if par == len(ua.loops):
                color = "palegreen"
            elif par == 0:
                color = "lightcoral"
            else:
                color = "khaki"
        label = f"{name}\\n{_unit_summary(pa, name)}"
        lines.append(
            f'  "{name}" [label="{label}", style=filled, fillcolor={color}];'
        )
    seen = set()
    for site in cg.sites:
        key = (site.caller, site.callee)
        if key in seen:
            continue
        seen.add(key)
        lines.append(f'  "{site.caller}" -> "{site.callee}";')
    lines.append("}")
    return "\n".join(lines)
