"""Dependence marking: proven / pending / accepted / rejected.

"The system marks each dependence as either proven, pending, accepted or
rejected.  If Ped proves a dependence exists with an exact dependence
test, the dependence is marked as proven; otherwise it is marked pending.
Users may sharpen Ped's dependence analysis by marking a pending
dependence as accepted or rejected."

User markings must survive reanalysis (edits, transformations, new
assertions rebuild the dependence graph from scratch), so they are stored
under a *stable identity key* — kind, variable, endpoint lines and
vector — and re-applied to every fresh graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..dependence.graph import (
    ACCEPTED,
    Dependence,
    DependenceGraph,
    PENDING,
    PROVEN,
    REJECTED,
)

#: Stable identity of a dependence across reanalysis.
DepKey = Tuple[str, str, int, int, str]


def key_of(dep: Dependence) -> DepKey:
    return (dep.kind, dep.var, dep.src_line, dep.dst_line, dep.vector_str())


class MarkingError(ValueError):
    """Raised for invalid marking transitions."""


@dataclass
class MarkingStore:
    """User dependence markings, keyed stably."""

    marks: Dict[DepKey, str] = field(default_factory=dict)

    def mark(self, dep: Dependence, marking: str) -> None:
        """Apply a user marking to a dependence.

        Only *pending* dependences may be accepted or rejected: a proven
        dependence really exists and Ped refuses to discard it (the user
        must edit the program instead).  Re-marking an accepted/rejected
        edge is allowed (users change their minds); marking back to
        ``pending`` clears the user's decision.
        """

        if marking not in (ACCEPTED, REJECTED, PENDING):
            raise MarkingError(f"invalid marking {marking!r}")
        if dep.marking == PROVEN and marking == REJECTED:
            raise MarkingError(
                f"dependence on {dep.var} was proven by an exact test "
                "and cannot be rejected; edit the program or add an "
                "assertion that changes the analysis instead"
            )
        key = key_of(dep)
        if marking == PENDING:
            self.marks.pop(key, None)
            dep.marking = PENDING
        else:
            self.marks[key] = marking
            dep.marking = marking

    def apply(self, graph: DependenceGraph) -> int:
        """Re-apply stored markings to a freshly built graph.

        Returns the number of edges re-marked.  Markings whose dependence
        no longer exists (the edit/assertion removed it) simply have no
        effect — exactly what the user wanted.
        """

        hits = 0
        for dep in graph.edges:
            marking = self.marks.get(key_of(dep))
            if marking is not None and dep.marking != PROVEN:
                dep.marking = marking
                hits += 1
        return hits

    def shift_lines(self, after_line: int, delta: int) -> None:
        """Renumber marking keys after an edit changed the line count.

        Endpoint lines strictly beyond ``after_line`` move by ``delta``,
        so markings on untouched statements keep matching their edges
        when the program below an edit shifts up or down.
        """

        if not delta:
            return
        shifted: Dict[DepKey, str] = {}
        for (kind, var, src, dst, vector), marking in self.marks.items():
            src = src + delta if src > after_line else src
            dst = dst + delta if dst > after_line else dst
            shifted[(kind, var, src, dst, vector)] = marking
        self.marks = shifted

    def clear(self) -> None:
        self.marks.clear()

    def snapshot(self) -> Dict[DepKey, str]:
        return dict(self.marks)

    def restore(self, snap: Dict[DepKey, str]) -> None:
        self.marks = dict(snap)
