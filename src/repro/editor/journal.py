"""Event-sourced session journal: typed mutation records + replay.

Every :class:`~repro.editor.session.PedSession` mutation — edits,
transformation applies, assertions, dependence markings, variable
reclassifications, selection moves, undo/redo — appends one typed,
JSON-serializable :class:`MutationRecord` to the session's
:class:`SessionJournal`.  The journal is the canonical history: the live
session state is, by construction, what :func:`replay_journal` produces
from the base source plus the record sequence, and the replay-parity
tests assert byte-identical analysis fingerprints at *every* prefix.

That single invariant buys several features at once:

* **time travel** — undo/redo restore the state at a journal position,
  falling back to a prefix replay when the interned snapshot for that
  position was evicted;
* **durability** — the service layer streams records to an append-only
  per-session file and can rebuild a killed server's sessions by
  replaying them (``session.restore``);
* **audit/debugging** — ``session.log`` pages through the raw records.

Records only capture *user-level intent* (the arguments the caller
passed), never derived state: replay re-derives everything through the
same analysis pipeline, which is what makes the fingerprint parity a
meaningful end-to-end check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .session import PedSession

#: Bump when the record schema changes incompatibly.  Persisted journals
#: carry this stamp; the loader refuses (and falls back cold) on mismatch.
JOURNAL_VERSION = 1

#: Every record ``op`` the replayer understands, in no particular order.
MUTATION_OPS = (
    "edit",
    "apply",
    "assert",
    "mark",
    "reclassify",
    "select",
    "undo",
    "redo",
)

_SCALARS = (str, int, float, bool, type(None))


class JournalError(Exception):
    """A journal cannot be (de)serialized or replayed."""


def _wire_value(value):
    """JSON-safe view of one recorded argument.

    Scalars pass through; lists/tuples/dicts of scalars recurse.  Any
    other value (an AST node passed straight to ``apply`` by library
    code) is kept as an ``__opaque__`` repr: the journal stays
    appendable and readable, but replaying that record raises a clear
    :class:`JournalError` instead of silently diverging.
    """

    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_wire_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _wire_value(v) for k, v in value.items()}
    return {"__opaque__": repr(value)}


def _is_opaque(value) -> bool:
    if isinstance(value, dict):
        if "__opaque__" in value:
            return True
        return any(_is_opaque(v) for v in value.values())
    if isinstance(value, list):
        return any(_is_opaque(v) for v in value)
    return False


@dataclass(frozen=True)
class MutationRecord:
    """One journaled mutation: an op name plus its user-level arguments."""

    op: str
    args: Dict[str, object] = field(default_factory=dict)

    def to_wire(self) -> Dict:
        return {"op": self.op, "args": dict(self.args)}

    @classmethod
    def from_wire(cls, wire: Dict) -> "MutationRecord":
        try:
            op = wire["op"]
        except (TypeError, KeyError):
            raise JournalError(f"malformed journal record: {wire!r}")
        if op not in MUTATION_OPS:
            raise JournalError(f"unknown journal op {op!r}")
        args = wire.get("args") or {}
        if not isinstance(args, dict):
            raise JournalError(f"journal record args must be a dict: {wire!r}")
        return cls(op, args)

    @property
    def replayable(self) -> bool:
        return not _is_opaque(self.args)


@dataclass
class SessionJournal:
    """Append-only mutation log for one session.

    ``base_source`` is the program text the session opened with; the
    records, applied in order on top of it, reproduce the live state.
    An optional ``listener`` observes each append — the service layer
    hangs its durable per-session journal file there, so persistence
    stays an editor-layer-free concern.
    """

    base_source: str
    records: List[MutationRecord] = field(default_factory=list)
    #: Called with each freshly appended record (service-layer durability
    #: hook).  Listener failures propagate: losing the durable log must
    #: not go unnoticed.
    listener: Optional[Callable[[MutationRecord], None]] = None

    def __len__(self) -> int:
        return len(self.records)

    def append(self, op: str, **args) -> MutationRecord:
        if op not in MUTATION_OPS:
            raise JournalError(f"unknown journal op {op!r}")
        record = MutationRecord(op, {k: _wire_value(v) for k, v in args.items()})
        self.records.append(record)
        if self.listener is not None:
            self.listener(record)
        return record

    def to_wire(self) -> Dict:
        return {
            "version": JOURNAL_VERSION,
            "base": self.base_source,
            "records": [r.to_wire() for r in self.records],
        }

    @classmethod
    def from_wire(cls, wire: Dict) -> "SessionJournal":
        if not isinstance(wire, dict):
            raise JournalError(f"journal wire form must be a dict: {type(wire)}")
        version = wire.get("version")
        if version != JOURNAL_VERSION:
            raise JournalError(
                f"journal version {version!r} unsupported "
                f"(this build reads v{JOURNAL_VERSION})"
            )
        base = wire.get("base")
        if not isinstance(base, str):
            raise JournalError("journal missing base source")
        records = [MutationRecord.from_wire(r) for r in wire.get("records", [])]
        return cls(base_source=base, records=records)


def apply_record(session: "PedSession", record: MutationRecord) -> None:
    """Apply one record to a live session via the same public mutation
    methods a user would call (which re-append it to ``session.journal``,
    keeping live and replayed journals identical)."""

    if not record.replayable:
        raise JournalError(
            f"record {record.op!r} holds non-serializable arguments and "
            f"cannot be replayed: {record.args!r}"
        )
    args = record.args
    try:
        if record.op == "edit":
            session.edit(int(args["start"]), int(args["end"]), args.get("text") or "")
        elif record.op == "apply":
            session.apply(args["transform"], **(args.get("args") or {}))
        elif record.op == "assert":
            session.add_assertion(args["text"])
        elif record.op == "mark":
            session.mark_dependence(int(args["dep"]), args["marking"])
        elif record.op == "reclassify":
            session.reclassify(args["var"], args["classification"])
        elif record.op == "select":
            if args.get("unit") is not None:
                session.select_unit(args["unit"])
            if args.get("loop") is not None:
                session.select_loop(int(args["loop"]))
        elif record.op == "undo":
            session.undo()
        elif record.op == "redo":
            session.redo()
        else:  # pragma: no cover - from_wire/append validate ops
            raise JournalError(f"unknown journal op {record.op!r}")
    except KeyError as exc:
        raise JournalError(
            f"record {record.op!r} missing argument {exc.args[0]!r}"
        ) from exc


def replay_journal(
    journal: SessionJournal,
    upto: Optional[int] = None,
    *,
    features=None,
    engine=None,
    progress: Optional[Callable[[int, MutationRecord], None]] = None,
) -> "PedSession":
    """Rebuild a session at journal position ``upto`` (record count;
    ``None`` replays everything).

    The replayed session runs through the provided ``engine`` when given
    (sharing its content-keyed caches makes replaying previously seen
    states cheap) and journals its own replay, so
    ``replayed.journal.records == journal.records[:upto]`` — an equality
    the parity tests pin down.
    """

    from .session import PedSession

    records = journal.records if upto is None else journal.records[:upto]
    session = PedSession(journal.base_source, features=features, engine=engine)
    for i, record in enumerate(records):
        if progress is not None:
            progress(i, record)
        apply_record(session, record)
    return session
