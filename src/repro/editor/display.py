"""Deterministic text rendering of the Ped window (Figure 1).

"The layout of a Ped window is shown in Figure 1.  The large area at the
top is the source pane displaying the Fortran text"; below it sit the
loop list, the dependence pane with the current filter, and the variable
pane.  This module reproduces that layout as fixed-width text so the
figure can be regenerated (bench F1) and asserted on in tests.
"""

from __future__ import annotations

from typing import List

from .panes import dependence_pane, loop_pane, source_pane, variable_pane
from .session import PedSession

_WIDTH = 78


def _bar(title: str) -> str:
    body = f"== {title} " if title else ""
    return (body + "=" * _WIDTH)[:_WIDTH]


def _clip(text: str) -> str:
    return text[:_WIDTH]


def render_window(session: PedSession, max_source: int = 24) -> str:
    """Render the full Ped window for the current session state."""

    lines: List[str] = []
    lines.append(_bar(""))
    title = f"ParaScope Editor -- {session.current_unit}"
    lines.append(_clip(f"| {title:<{_WIDTH - 4}} |"))
    menu = "[ edit ] [ view ] [ filter ] [ analyze ] [ transform ] [ undo ]"
    lines.append(_clip(f"| {menu:<{_WIDTH - 4}} |"))
    lines.append(_bar("source"))
    src_rows = source_pane(session)
    # Scroll the pane to keep the selection visible (progressive
    # disclosure: the window centres on what the user is working on).
    first_selected = next(
        (i for i, row in enumerate(src_rows) if row.selected), None
    )
    start = 0
    if first_selected is not None and first_selected >= max_source:
        start = max(0, first_selected - max_source // 3)
    shown = src_rows[start : start + max_source]
    if start:
        lines.append(_clip(f"   ... {start} earlier lines ..."))
    for row in shown:
        marker = ">" if row.selected else " "
        par = "P" if row.parallel else " "
        lines.append(_clip(f"{marker}{par}{row.lineno:>5} {row.text}"))
    remaining = len(src_rows) - (start + len(shown))
    if remaining > 0:
        lines.append(_clip(f"   ... {remaining} more lines ..."))

    lines.append(_bar("loops"))
    for lrow in loop_pane(session):
        sel = ">" if session.loop_index == lrow.index else " "
        indent = "  " * (lrow.depth - 1)
        lines.append(
            _clip(
                f"{sel} [{lrow.index}] {indent}{lrow.header:<24} "
                f"line {lrow.line:<4} {lrow.verdict}"
            )
        )

    flt = session.dep_filter.describe()
    lines.append(_bar(f"dependences (filter: {flt})"))
    dep_rows = dependence_pane(session)
    if not dep_rows:
        lines.append(_clip("  (none)"))
    for drow in dep_rows[:16]:
        note = f"  [{drow.note}]" if drow.note else ""
        lines.append(
            _clip(
                f"  #{drow.dep_id:<3} {drow.kind:<7} {drow.var:<10} "
                f"{drow.vector:<10} {drow.marking:<9} "
                f"{drow.src_line:>4} -> {drow.dst_line:<4}{note}"
            )
        )
    if len(dep_rows) > 16:
        lines.append(_clip(f"  ... {len(dep_rows) - 16} more ..."))

    lines.append(_bar("variables"))
    var_rows = variable_pane(session)
    if not var_rows:
        lines.append(_clip("  (select a loop)"))
    for vrow in var_rows[:12]:
        star = "*" if vrow.user_override else " "
        lines.append(
            _clip(
                f" {star}{vrow.name:<12} {vrow.classification:<10} {vrow.detail}"
            )
        )
    lines.append(_bar(""))
    if session.last_message:
        lines.append(_clip(f"  {session.last_message}"))
    return "\n".join(lines)
