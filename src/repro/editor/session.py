"""PedSession: the editor's model object.

One session owns the program text and every piece of derived state — the
bound AST, the whole-program analysis, per-unit assertion databases, the
marking store, variable reclassifications, the current unit/loop
selection and the pane filters — plus an undo stack of full snapshots.

Every mutation (edit, transformation, assertion, reclassification) goes
through :meth:`reanalyze`, mirroring Ped's behaviour of keeping analysis
current with the program ("incremental parsing occurs in response to
edits, and the user is immediately informed").  Reanalysis runs through
the session's :class:`~repro.incremental.AnalysisEngine`: an edit
confined to one procedure reparses and reanalyzes only that procedure,
an assertion or reclassification change reanalyzes without any reparse,
and undo/redo restore previously seen program states straight from the
engine's content-keyed caches — bench M2 quantifies all of it, and the
``stats`` command shows the per-stage numbers live.

The session is event-sourced: every successful mutation appends a typed
record to :attr:`PedSession.journal`
(:class:`~repro.editor.journal.SessionJournal`), and the live state is
always exactly what replaying that journal from the base source would
produce.  Undo/redo are journal *positions*: each mutation remembers the
record count it happened at, plus an interned snapshot of the state then.
Undo appends an ``undo`` marker and restores the target position — from
its snapshot when still cached, otherwise by replaying the journal
prefix (cheap: previously seen program states hit the engine's
content-keyed caches).  Snapshots intern identical unit texts across
history and are capped (``max_snapshots``), with evictions counted on
``session.undo_evicted`` — undo depth stays unbounded while undo memory
does not.
"""

from __future__ import annotations

import logging
import re
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dependence.driver import LoopInfo, UnitAnalysis
from ..dependence.graph import Dependence
from ..fortran.ast_nodes import DoLoop, ProcedureUnit, SourceFile
from ..fortran.printer import to_source
from ..incremental import AnalysisEngine
from ..interproc.program import FeatureSet, ProgramAnalysis
from ..transform.base import Advice, TransformContext
from ..transform.registry import get_transformation
from .filters import DependenceFilter, SourceFilter
from .journal import SessionJournal, replay_journal
from .marking import MarkingStore

log = logging.getLogger(__name__)

#: Stable identity of a loop across edits that renumber loop indexes:
#: (loop variable, occurrence of that variable among the unit's loops).
LoopAnchor = Tuple[str, int]

#: A standalone ``END`` statement line (optionally labeled) — the cheap
#: snapshot-fragment boundary :meth:`PedSession._intern_pieces` cuts at.
_END_STMT = re.compile(r"(?:\d+\s+)?end", re.IGNORECASE)


@dataclass
class _Snapshot:
    #: Interned source fragments (cut at ``END`` statement lines, so one
    #: fragment per program unit in practice); joining them reproduces
    #: the program text exactly.  Fragments are shared across snapshots,
    #: so N history entries of a lightly edited program cost far less
    #: than N full copies.
    pieces: Tuple[str, ...]
    assertions: Dict[str, List[str]]
    marks: Dict
    overrides: Dict
    unit: str
    loop_index: Optional[int]
    anchors: Dict = field(default_factory=dict)

    @property
    def source(self) -> str:
        return "".join(self.pieces)


class PedError(Exception):
    """User-level session errors (bad selection, failed transformation…)."""


class PedSession:
    """An interactive ParaScope Editor session over one Fortran program."""

    #: Default cap on cached undo/redo snapshots (journal positions past
    #: the cap restore via prefix replay instead).
    MAX_SNAPSHOTS = 64

    def __init__(
        self,
        source: str,
        features: Optional[FeatureSet] = None,
        engine: Optional[AnalysisEngine] = None,
        max_snapshots: Optional[int] = None,
    ) -> None:
        self.engine = engine or AnalysisEngine(features=features)
        self.features = self.engine.features
        self.source = source
        self.journal = SessionJournal(base_source=source)
        self.assertion_texts: Dict[str, List[str]] = {}
        self.markings = MarkingStore()
        #: (unit, loop_line-independent) variable reclassifications:
        #: {unit: {loop_index: {var: class}}}
        self.overrides: Dict[str, Dict[int, Dict[str, str]]] = {}
        #: Loop anchors for each override, so reclassifications follow
        #: their loop when an edit renumbers the loop list.
        self._override_anchors: Dict[str, Dict[int, LoopAnchor]] = {}
        #: Non-fatal notices from the last reanalysis (dropped overrides…).
        self.warnings: List[str] = []
        self.dep_filter = DependenceFilter()
        self.src_filter = SourceFilter()
        self.current_unit: str = ""
        self.loop_index: Optional[int] = None
        #: Undo/redo stacks hold journal *positions* (record counts);
        #: ``_snapshots`` caches the interned state at each position.
        self._undo: List[int] = []
        self._redo: List[int] = []
        self._snapshots: "OrderedDict[int, _Snapshot]" = OrderedDict()
        self._max_snapshots = (
            self.MAX_SNAPSHOTS if max_snapshots is None else max(1, max_snapshots)
        )
        self._intern_pool: Dict[str, str] = {}
        self.sf: SourceFile = None  # type: ignore[assignment]
        self.analysis: ProgramAnalysis = None  # type: ignore[assignment]
        self.last_message = ""
        self.reanalyze()
        if self.sf.units:
            self.current_unit = self.sf.units[0].name

    # ------------------------------------------------------------------
    # analysis lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release engine-owned resources (worker processes).

        Only call when the session owns its engine; server-hosted
        sessions share one pool and must not close it.
        """

        self.engine.close()

    def reanalyze(self) -> None:
        """(Re)parse and (re)analyze; re-apply markings and overrides.

        Runs through the incremental engine: only units whose source
        span, assertions or interprocedural inputs changed are actually
        recomputed.
        """

        self.warnings = []
        self.sf, self.analysis = self.engine.analyze(
            self.source, assertions=self.assertion_texts
        )
        self._remap_overrides()
        for ua in self.analysis.units.values():
            self.markings.apply(ua.graph)
            self._apply_overrides(ua)
            self._recompute_verdicts(ua)

    def _loop_anchors(self, ua: UnitAnalysis) -> List[LoopAnchor]:
        counts: Dict[str, int] = {}
        anchors: List[LoopAnchor] = []
        for nest in ua.loops:
            var = nest.loop.var
            occurrence = counts.get(var, 0)
            counts[var] = occurrence + 1
            anchors.append((var, occurrence))
        return anchors

    def _remap_overrides(self) -> None:
        """Re-anchor reclassifications after reanalysis.

        Loop indexes are positions in the unit's loop list, so an edit
        that adds or removes a loop renumbers everything after it.  Each
        override carries a (loop var, occurrence) anchor; overrides whose
        anchor still exists follow their loop to its new index, the rest
        are dropped *with a warning* rather than silently skipped.
        """

        new_overrides: Dict[str, Dict[int, Dict[str, str]]] = {}
        new_anchors: Dict[str, Dict[int, LoopAnchor]] = {}
        for unit_name, per_unit in self.overrides.items():
            ua = self.analysis.units.get(unit_name)
            if ua is None:
                self.warnings.append(
                    f"dropped reclassifications for {unit_name!r}: "
                    "the unit no longer exists"
                )
                continue
            anchors = self._loop_anchors(ua)
            index_of = {anchor: i for i, anchor in enumerate(anchors)}
            unit_anchors = self._override_anchors.get(unit_name, {})
            for old_idx in sorted(per_unit):
                classes = per_unit[old_idx]
                if not classes:
                    continue
                anchor = unit_anchors.get(old_idx)
                if anchor is None and old_idx < len(anchors):
                    anchor = anchors[old_idx]
                new_idx = index_of.get(anchor) if anchor is not None else None
                if new_idx is None:
                    names = ", ".join(sorted(classes))
                    self.warnings.append(
                        f"dropped reclassification of {names} on "
                        f"{unit_name} loop[{old_idx}]: the loop no longer "
                        "exists after the edit"
                    )
                    continue
                slot = new_overrides.setdefault(unit_name, {}).setdefault(
                    new_idx, {}
                )
                slot.update(classes)
                new_anchors.setdefault(unit_name, {})[new_idx] = anchor
        self.overrides = new_overrides
        self._override_anchors = new_anchors

    def _apply_overrides(self, ua: UnitAnalysis) -> None:
        per_unit = self.overrides.get(ua.unit.name, {})
        for loop_idx, classes in per_unit.items():
            if loop_idx >= len(ua.loops):
                self.warnings.append(
                    f"reclassification on {ua.unit.name} loop[{loop_idx}] "
                    "has no matching loop; ignored"
                )
                continue
            loop = ua.loops[loop_idx].loop
            for var, cls in classes.items():
                if cls == "private":
                    for dep in ua.graph.carried_by(loop):
                        if dep.var == var and dep.marking != "proven":
                            dep.marking = "rejected"

    def _recompute_verdicts(self, ua: UnitAnalysis) -> None:
        """Refresh per-loop verdicts after markings changed edge states."""

        for info in ua.loop_info.values():
            blocking = info.blocking_deps()
            dep_obstacles = [
                f"loop-carried {d.kind} dependence on {d.var} "
                f"{d.vector_str()} [{d.marking}]"
                for d in blocking
            ]
            other = [
                o
                for o in info.obstacles
                if not o.startswith("loop-carried")
            ]
            info.obstacles = dep_obstacles + other
            info.parallelizable = not info.obstacles

    # ------------------------------------------------------------------
    # selection & queries
    # ------------------------------------------------------------------

    @property
    def unit(self) -> ProcedureUnit:
        try:
            return self.sf.unit(self.current_unit)
        except KeyError:
            raise PedError(f"no unit named {self.current_unit!r}")

    @property
    def unit_analysis(self) -> UnitAnalysis:
        return self.analysis.unit(self.current_unit)

    def select_unit(self, name: str) -> None:
        name = name.lower()
        if name not in self.analysis.units:
            known = ", ".join(sorted(self.analysis.units))
            raise PedError(f"unknown unit {name!r}; program units: {known}")
        self.current_unit = name
        self.loop_index = None
        # Selection is journaled because mutations depend on it (apply,
        # reclassify, add_assertion): a replayed prefix must land on the
        # same unit/loop the live session had at that point.
        self.journal.append("select", unit=name)

    def loops(self) -> List:
        return self.unit_analysis.loops

    def select_loop(self, index: int) -> None:
        loops = self.loops()
        if not 0 <= index < len(loops):
            raise PedError(
                f"loop index {index} out of range (unit has {len(loops)} loops)"
            )
        self.loop_index = index
        self.journal.append("select", loop=index)

    @property
    def selected_loop(self) -> Optional[DoLoop]:
        if self.loop_index is None:
            return None
        loops = self.loops()
        if self.loop_index >= len(loops):
            return None
        return loops[self.loop_index].loop

    @property
    def selected_info(self) -> Optional[LoopInfo]:
        loop = self.selected_loop
        if loop is None:
            return None
        return self.unit_analysis.loop_info[loop.sid]

    def dependences(self, unfiltered: bool = False) -> List[Dependence]:
        """Dependence-pane contents for the current selection."""

        ua = self.unit_analysis
        loop = self.selected_loop
        if loop is None:
            edges = (
                ua.graph.edges
                if unfiltered
                else self.dep_filter.candidates(ua.graph)
            )
        else:
            sids = ua.body_sids(loop) | {loop.sid}
            edges = ua.graph.edges_within(sids)
        if unfiltered:
            return list(edges)
        return [d for d in edges if self.dep_filter.matches(d)]

    def find_dependence(self, dep_id: int) -> Dependence:
        try:
            return self.unit_analysis.graph.find(dep_id)
        except KeyError:
            raise PedError(f"no dependence #{dep_id} in {self.current_unit}")

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def _intern(self, text: str) -> str:
        return self._intern_pool.setdefault(text, text)

    def _intern_pieces(self, source: str) -> Tuple[str, ...]:
        """Source as a tuple of interned fragments.

        Fragments are cut at standalone ``END`` statements — a cheap
        line scan, not a full tokenize, because this runs on *every*
        mutation and only feeds snapshot interning: pieces always
        concatenate back to ``source`` exactly, so a missed boundary
        merely coarsens sharing, never corrupts a snapshot.  Unedited
        units keep byte-identical fragment texts across snapshots and
        collapse to one interned string each.
        """

        pieces: List[str] = []
        buf: List[str] = []
        for line in source.splitlines(keepends=True):
            buf.append(line)
            if line[:1] in ("c", "C", "*", "!"):
                continue  # fixed-form comment, never a boundary
            if _END_STMT.fullmatch(line.strip()):
                pieces.append(self._intern("".join(buf)))
                buf = []
        if buf:
            pieces.append(self._intern("".join(buf)))
        if not pieces:
            return (self._intern(source),)
        return tuple(pieces)

    def _current_snapshot(self) -> _Snapshot:
        return _Snapshot(
            self._intern_pieces(self.source),
            {k: list(v) for k, v in self.assertion_texts.items()},
            self.markings.snapshot(),
            {
                u: {i: dict(c) for i, c in per.items()}
                for u, per in self.overrides.items()
            },
            self.current_unit,
            self.loop_index,
            {u: dict(a) for u, a in self._override_anchors.items()},
        )

    def _remember(self, position: int) -> None:
        """Cache the current state as the snapshot for journal ``position``,
        evicting the oldest cached snapshot past the cap (restoring an
        evicted position replays the journal prefix instead)."""

        self._snapshots.pop(position, None)
        self._snapshots[position] = self._current_snapshot()
        while len(self._snapshots) > self._max_snapshots:
            evicted, _ = self._snapshots.popitem(last=False)
            self.engine.stats.bump("session.undo_evicted")
            log.info(
                "undo snapshot for journal position %d evicted "
                "(cap %d); undo to it will replay the journal prefix",
                evicted,
                self._max_snapshots,
            )

    def _push_undo(self) -> None:
        position = len(self.journal)
        self._remember(position)
        self._undo.append(position)
        self._redo.clear()

    def _restore(self, snap: _Snapshot) -> None:
        self.source = snap.source
        self.assertion_texts = {k: list(v) for k, v in snap.assertions.items()}
        self.markings.restore(snap.marks)
        self.overrides = {
            u: {i: dict(c) for i, c in per.items()}
            for u, per in snap.overrides.items()
        }
        self._override_anchors = {
            u: dict(a) for u, a in snap.anchors.items()
        }
        self.current_unit = snap.unit
        self.loop_index = snap.loop_index
        self.reanalyze()

    def _snapshot_of(self, other: "PedSession") -> _Snapshot:
        return _Snapshot(
            self._intern_pieces(other.source),
            {k: list(v) for k, v in other.assertion_texts.items()},
            other.markings.snapshot(),
            {
                u: {i: dict(c) for i, c in per.items()}
                for u, per in other.overrides.items()
            },
            other.current_unit,
            other.loop_index,
            {u: dict(a) for u, a in other._override_anchors.items()},
        )

    def _restore_position(self, position: int) -> None:
        snap = self._snapshots.get(position)
        if snap is None:
            # Evicted: rebuild the state by replaying the journal prefix
            # through this session's (warm) engine.
            self.engine.stats.bump("session.undo_replayed")
            scratch = replay_journal(self.journal, position, engine=self.engine)
            snap = self._snapshot_of(scratch)
        self._restore(snap)

    @property
    def undo_depth(self) -> int:
        return len(self._undo)

    @property
    def redo_depth(self) -> int:
        return len(self._redo)

    def undo(self) -> None:
        if not self._undo:
            raise PedError("nothing to undo")
        target = self._undo.pop()
        position = len(self.journal)
        self._remember(position)
        self._redo.append(position)
        self.journal.append("undo")
        self._restore_position(target)

    def redo(self) -> None:
        if not self._redo:
            raise PedError("nothing to redo")
        target = self._redo.pop()
        position = len(self.journal)
        self._remember(position)
        self._undo.append(position)
        self.journal.append("redo")
        self._restore_position(target)

    def mark_dependence(self, dep_id: int, marking: str) -> str:
        dep = self.find_dependence(dep_id)
        self._push_undo()
        from .marking import MarkingError

        try:
            self.markings.mark(dep, marking)
        except MarkingError as exc:
            self._undo.pop()
            raise PedError(str(exc)) from exc
        for ua in self.analysis.units.values():
            self._recompute_verdicts(ua)
        self.journal.append("mark", dep=dep_id, marking=marking)
        return f"dependence #{dep_id} on {dep.var} marked {marking}"

    def add_assertion(self, text: str) -> str:
        from ..assertions.facts import AssertionSyntaxError, parse_assertion

        try:
            parse_assertion(text)
        except AssertionSyntaxError as exc:
            raise PedError(str(exc)) from exc
        self._push_undo()
        self.assertion_texts.setdefault(self.current_unit, []).append(text)
        self.reanalyze()
        self.journal.append("assert", text=text)
        return f"assertion recorded for {self.current_unit}: {text}"

    def reclassify(self, var: str, classification: str) -> str:
        if classification not in ("private", "shared"):
            raise PedError("reclassify supports 'private' or 'shared'")
        if self.loop_index is None:
            raise PedError("select a loop first")
        self._push_undo()
        per_unit = self.overrides.setdefault(self.current_unit, {})
        classes = per_unit.setdefault(self.loop_index, {})
        if classification == "shared":
            classes.pop(var.lower(), None)
        else:
            classes[var.lower()] = classification
        if classes:
            anchors = self._loop_anchors(self.unit_analysis)
            self._override_anchors.setdefault(self.current_unit, {})[
                self.loop_index
            ] = anchors[self.loop_index]
        else:
            per_unit.pop(self.loop_index, None)
            self._override_anchors.get(self.current_unit, {}).pop(
                self.loop_index, None
            )
        self.reanalyze()
        self.journal.append("reclassify", var=var, classification=classification)
        return f"{var} reclassified as {classification}"

    def diagnose(self, name: str, **kwargs) -> Advice:
        """Power steering step 1: ask for advice without changing code."""

        transform = get_transformation(name)
        ctx = TransformContext(self.unit, self.unit_analysis, self.sf)
        kwargs = self._resolve_selection(kwargs)
        return transform.diagnose(ctx, **kwargs)

    def apply(self, name: str, **kwargs) -> str:
        """Power steering step 2: perform the transformation."""

        from ..transform.base import TransformError

        transform = get_transformation(name)
        # Journal the caller's arguments, not the resolved AST targets:
        # replay re-resolves from the (journaled) selection, which is
        # what keeps the record serializable and the replay honest.
        given = dict(kwargs)
        self._push_undo()
        ctx = TransformContext(self.unit, self.unit_analysis, self.sf)
        kwargs = self._resolve_selection(kwargs)
        try:
            summary = transform.apply(ctx, **kwargs)
        except TransformError as exc:
            self._undo.pop()
            raise PedError(str(exc)) from exc
        self.source = to_source(self.sf)
        # The transformation mutated the AST in place, and cached units
        # alias it: the engine's content-keyed caches are no longer
        # trustworthy, so drop them and reanalyze from the new source.
        self.engine.invalidate()
        self.reanalyze()
        self.journal.append("apply", transform=name, args=given)
        self.last_message = summary
        return summary

    def _resolve_selection(self, kwargs: Dict) -> Dict:
        """Fill the transformation's target from the session selection.

        A ``line=N`` argument selects the statement at that source line
        (a CALL becomes the ``call`` argument, anything else ``stmt``);
        otherwise the selected loop is passed as ``loop``.
        """

        kwargs = dict(kwargs)
        line = kwargs.pop("line", None)
        if line is not None:
            from ..fortran.ast_nodes import CallStmt, walk_statements

            target = None
            for st in walk_statements(self.unit.body):
                if st.line == int(line):
                    target = st
                    break
            if target is None:
                raise PedError(f"no statement at line {line}")
            if isinstance(target, CallStmt):
                kwargs.setdefault("call", target)
            elif isinstance(target, DoLoop):
                kwargs.setdefault("loop", target)
            else:
                kwargs.setdefault("stmt", target)
        if (
            "loop" not in kwargs
            and "call" not in kwargs
            and "stmt" not in kwargs
            and self.selected_loop is not None
        ):
            kwargs["loop"] = self.selected_loop
        return kwargs

    def edit(self, start_line: int, end_line: int, new_text: str) -> str:
        """Replace source lines [start_line, end_line] (1-based, inclusive).

        The session reparses immediately; syntax errors roll the edit back
        and surface as :class:`PedError` — Ped's "the user is immediately
        informed of any syntactic or semantic errors".
        """

        lines = self.source.splitlines()
        if not (1 <= start_line <= end_line <= len(lines)):
            raise PedError(
                f"line range {start_line}-{end_line} outside 1-{len(lines)}"
            )
        self._push_undo()
        new_lines = new_text.splitlines() if new_text else []
        delta = len(new_lines) - (end_line - start_line + 1)
        saved_marks = self.markings.snapshot()
        lines[start_line - 1 : end_line] = new_lines
        old_source = self.source
        self.source = "\n".join(lines) + "\n"
        if delta:
            # Keep markings attached to their statements: everything past
            # the replaced range moves by the edit's line delta.
            self.markings.shift_lines(end_line, delta)
        from ..fortran.errors import FortranError

        try:
            self.reanalyze()
        except FortranError as exc:
            self.source = old_source
            self.markings.restore(saved_marks)
            self._undo.pop()
            self.reanalyze()
            raise PedError(f"edit rejected: {exc}") from exc
        self.journal.append(
            "edit", start=start_line, end=end_line, text=new_text
        )
        message = f"replaced lines {start_line}-{end_line}"
        for warning in self.warnings:
            message += f"\nwarning: {warning}"
        return message

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------

    def parallel_summary(self) -> List[Tuple[str, int, int]]:
        """(unit, parallel loops, total loops) triples."""

        out = []
        for name, ua in sorted(self.analysis.units.items()):
            out.append((name, len(ua.parallel_loops()), len(ua.loops)))
        return out
