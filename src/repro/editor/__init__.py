"""The ParaScope Editor: session state, panes, filtering, marking,
variable classification, navigation, display and the command language."""

from .marking import DepKey, MarkingStore  # noqa: F401
from .filters import DependenceFilter, SourceFilter  # noqa: F401
from .journal import (  # noqa: F401
    JournalError,
    MutationRecord,
    SessionJournal,
    apply_record,
    replay_journal,
)
from .session import PedSession  # noqa: F401
from .variables import VariableRow, classify_variables  # noqa: F401
from .panes import dependence_pane, loop_pane, source_pane, variable_pane  # noqa: F401
from .display import render_window  # noqa: F401
from .commands import CommandInterpreter  # noqa: F401
from .navigation import hottest_unparallelized, ranked_loops  # noqa: F401
