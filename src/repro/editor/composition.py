"""The Composition Editor: whole-program signature checking.

"Another ParaScope tool, the Composition Editor, compares a procedure
definition to calls invoking it, ensuring the parameter lists agree in
number and type.  These types of errors exist in production codes because
most compilers do not perform cross-procedure comparisons.  Several
mismatched parameters between a procedure call and its declaration were
detected and subsequently corrected using this analysis."

:func:`check_composition` reports, for every call site whose callee is in
the program:

* **argument-count mismatches** (the classic production-code bug);
* **type mismatches** between actual and formal (integer vs real, with
  the usual implicit-typing rules applied);
* **kind mismatches** — an array actual bound to a scalar formal or vice
  versa (whole-array vs element actuals are both accepted for array
  formals, matching Fortran linkage);
* **COMMON block shape disagreements** between any two units declaring
  the same block (member count or per-member scalar/array kind).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..fortran.ast_nodes import (
    ArrayRef,
    BinOp,
    Expr,
    FuncRef,
    LogicalLit,
    Num,
    SourceFile,
    Str,
    UnOp,
    VarRef,
)
from ..fortran.symbols import SymbolTable, implicit_type
from ..interproc.callgraph import CallGraph, build_callgraph


@dataclass
class CompositionIssue:
    """One cross-procedure inconsistency."""

    kind: str  # arg-count | arg-type | arg-kind | common-shape
    where: str  # "caller -> callee" or "unitA / unitB"
    line: int
    message: str

    def __str__(self) -> str:
        return f"line {self.line}: [{self.kind}] {self.where}: {self.message}"


def _expr_type(expr: Expr, table: SymbolTable) -> Optional[str]:
    """Static type of an actual argument, or None when unknown."""

    if isinstance(expr, Num):
        return "integer" if isinstance(expr.value, int) else "real"
    if isinstance(expr, Str):
        return "character"
    if isinstance(expr, LogicalLit):
        return "logical"
    if isinstance(expr, VarRef):
        sym = table.get(expr.name)
        return sym.typename if sym is not None else implicit_type(expr.name)
    if isinstance(expr, ArrayRef):
        sym = table.get(expr.name)
        return sym.typename if sym is not None else implicit_type(expr.name)
    if isinstance(expr, FuncRef):
        sym = table.get(expr.name)
        if sym is not None and sym.typename:
            return sym.typename
        return implicit_type(expr.name)
    if isinstance(expr, UnOp):
        return _expr_type(expr.operand, table)
    if isinstance(expr, BinOp):
        if expr.op in ("<", "<=", ">", ">=", "==", "/=", ".and.", ".or."):
            return "logical"
        left = _expr_type(expr.left, table)
        right = _expr_type(expr.right, table)
        if left == right:
            return left
        if "real" in (left, right) or "doubleprecision" in (left, right):
            return "real"
        return None
    return None


_NUMERIC = {"integer", "real", "doubleprecision"}


def _types_conflict(actual: Optional[str], formal: Optional[str]) -> bool:
    if actual is None or formal is None:
        return False
    if actual == formal:
        return False
    # double precision / real mixing is a precision bug, not linkage
    # breakage; the Composition Editor flags integer/real confusion.
    if {actual, formal} == {"real", "doubleprecision"}:
        return False
    return actual in _NUMERIC and formal in _NUMERIC or (
        (actual in _NUMERIC) != (formal in _NUMERIC)
    )


def check_composition(sf: SourceFile, cg: Optional[CallGraph] = None) -> List[CompositionIssue]:
    """Run all cross-procedure checks over a bound program."""

    cg = cg or build_callgraph(sf)
    issues: List[CompositionIssue] = []
    issues.extend(_check_calls(sf, cg))
    issues.extend(_check_commons(sf))
    issues.sort(key=lambda i: (i.line, i.kind))
    return issues


def _check_calls(sf: SourceFile, cg: CallGraph) -> List[CompositionIssue]:
    issues: List[CompositionIssue] = []
    for site in cg.sites:
        callee = cg.units[site.callee]
        caller = cg.units[site.caller]
        where = f"{site.caller} -> {site.callee}"
        ct: SymbolTable = caller.symtab  # type: ignore[assignment]
        et: SymbolTable = callee.symtab  # type: ignore[assignment]
        if len(site.args) != len(callee.formals):
            issues.append(
                CompositionIssue(
                    "arg-count",
                    where,
                    site.line,
                    f"call passes {len(site.args)} argument(s), "
                    f"{site.callee} declares {len(callee.formals)}",
                )
            )
            continue
        for idx, formal in enumerate(callee.formals):
            fsym = et[formal]
            actual = site.args[idx]
            # Kind check: array vs scalar linkage.
            actual_is_array = False
            if isinstance(actual, VarRef):
                asym = ct.get(actual.name)
                actual_is_array = asym is not None and asym.is_array
            if fsym.is_array and not actual_is_array:
                if isinstance(actual, ArrayRef):
                    pass  # element actual: legal array linkage
                elif isinstance(actual, (Num, Str, LogicalLit, BinOp, UnOp, FuncRef)):
                    issues.append(
                        CompositionIssue(
                            "arg-kind",
                            where,
                            site.line,
                            f"argument {idx + 1}: expression passed for "
                            f"array formal {formal}",
                        )
                    )
                else:
                    issues.append(
                        CompositionIssue(
                            "arg-kind",
                            where,
                            site.line,
                            f"argument {idx + 1}: scalar passed for array "
                            f"formal {formal}",
                        )
                    )
            elif not fsym.is_array and actual_is_array:
                issues.append(
                    CompositionIssue(
                        "arg-kind",
                        where,
                        site.line,
                        f"argument {idx + 1}: whole array passed for "
                        f"scalar formal {formal}",
                    )
                )
            # Type check.
            atype = _expr_type(actual, ct)
            if _types_conflict(atype, fsym.typename):
                issues.append(
                    CompositionIssue(
                        "arg-type",
                        where,
                        site.line,
                        f"argument {idx + 1}: {atype} actual for "
                        f"{fsym.typename} formal {formal}",
                    )
                )
    return issues


def _check_commons(sf: SourceFile) -> List[CompositionIssue]:
    issues: List[CompositionIssue] = []
    shapes: Dict[str, tuple] = {}  # block -> (unit, [(is_array)])
    for unit in sf.units:
        table: SymbolTable = unit.symtab  # type: ignore[assignment]
        if table is None:
            continue
        for block, members in table.common_blocks.items():
            shape = tuple(table[m].is_array for m in members)
            seen = shapes.get(block)
            if seen is None:
                shapes[block] = (unit.name, shape)
                continue
            first_unit, first_shape = seen
            if len(shape) != len(first_shape):
                issues.append(
                    CompositionIssue(
                        "common-shape",
                        f"{first_unit} / {unit.name}",
                        unit.line,
                        f"common /{block}/ has {len(first_shape)} member(s) "
                        f"in {first_unit} but {len(shape)} in {unit.name}",
                    )
                )
            elif shape != first_shape:
                issues.append(
                    CompositionIssue(
                        "common-shape",
                        f"{first_unit} / {unit.name}",
                        unit.line,
                        f"common /{block}/ member kinds differ between "
                        f"{first_unit} and {unit.name}",
                    )
                )
    return issues
