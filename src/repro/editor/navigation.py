"""Performance-guided navigation.

"Desirable functionality includes improved program navigation based on
performance estimation" — the evaluation's headline interface request.
These helpers rank a session's loops by estimated cost and point the user
at the most profitable *unparallelized* loop, across procedures.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..perf.estimator import PerformanceEstimator
from ..perf.machine import MachineModel
from .session import PedSession


def ranked_loops(
    session: PedSession, machine: Optional[MachineModel] = None
) -> List[Tuple[float, str, int, object]]:
    """All loops of the program ranked by estimated sequential cost.

    Returns ``(cycles, unit_name, loop_index_in_unit, LoopNest)`` tuples,
    costliest first.
    """

    est = PerformanceEstimator(machine or MachineModel())
    est.compute_unit_costs(session.analysis)
    ranked: List[Tuple[float, str, int, object]] = []
    for name, ua in session.analysis.units.items():
        for idx, nest in enumerate(ua.loops):
            cost = est.loop_estimate(nest.loop, ua).sequential
            ranked.append((cost, name, idx, nest))
    ranked.sort(key=lambda item: -item[0])
    return ranked


def hottest_unparallelized(
    session: PedSession, machine: Optional[MachineModel] = None
) -> Optional[Tuple[float, str, int, object]]:
    """The costliest loop that is not yet parallel — "look here next".

    Loops already enclosed in a parallel loop don't count (their work is
    covered); loops marked DOALL don't count either.
    """

    for cost, name, idx, nest in ranked_loops(session, machine):
        loop = nest.loop
        if loop.parallel:
            continue
        if any(parent.parallel for parent in nest.parents):
            continue
        return (cost, name, idx, nest)
    return None


def goto_hottest(session: PedSession) -> str:
    """Move the session's selection to the hottest unparallelized loop."""

    got = hottest_unparallelized(session)
    if got is None:
        return "every loop is already covered by a parallel loop"
    cost, name, idx, nest = got
    session.select_unit(name)
    session.select_loop(idx)
    return (
        f"selected loop {nest.loop.var} (line {nest.loop.line}) in {name}: "
        f"estimated {cost:.0f} cycles"
    )
