"""The editor's command language.

The X11 Ped drove everything through menus and mouse selections; the
reproduction exposes the same operations as a deterministic command
interpreter so sessions can be scripted, replayed and tested:

=================  =====================================================
``units``           list program units
``unit NAME``       switch to a unit
``loops``           list loops with verdicts
``select N``        select loop N (from ``loops``)
``deps``            dependence pane for the selection
``filter SPEC``     set the dependence filter (``type=… var=… carried``)
``viewsrc SPEC``    set the source filter (``loops`` / ``text=…``)
``mark N M``        mark dependence N accepted/rejected/pending
``assert TEXT``     add a user assertion (``assert n >= 1``)
``classify V C``    reclassify variable V as private/shared
``advice T [...]``  power-steering diagnosis for transformation T
``apply T [...]``   apply transformation T (args: ``var=`` ``factor=`` …)
``edit A B | TEXT`` replace source lines A..B with TEXT
``vars``            variable pane for the selection
``show``            render the full Ped window
``ranking``         performance-ranked loop list
``next``            jump to hottest unparallelized loop
``estimate``        static cost / speedup estimate for the selection
``profile``         interpreter-based loop-level profile
``goto N``          show both endpoints of dependence N
``callgraph [dot]`` call-graph tree (or Graphviz DOT)
``check``           Composition Editor: cross-procedure consistency
``summary``         per-unit parallel loop counts
``stats``           incremental-engine timers and cache hit rates
``graph [plan ..]`` pipeline-node outcomes / what-if invalidation
``undo`` ``redo``   session history
``journal``         the session's mutation journal (the event log
                    undo/redo and crash restore replay)
=================  =====================================================
"""

from __future__ import annotations

from typing import List

from .display import render_window
from .filters import DependenceFilter, SourceFilter
from .navigation import goto_hottest, ranked_loops
from .panes import dependence_pane, loop_pane, variable_pane
from .session import PedError, PedSession


class CommandInterpreter:
    """Executes editor commands against a session, returning text."""

    def __init__(self, session: PedSession) -> None:
        self.session = session
        self.log: List[str] = []

    def execute(self, line: str) -> str:
        """Run one command; errors come back as ``error: …`` text."""

        self.log.append(line)
        try:
            return self._dispatch(line.strip())
        except PedError as exc:
            return f"error: {exc}"
        except KeyError as exc:
            return f"error: {exc.args[0] if exc.args else exc}"
        except ValueError as exc:
            return f"error: {exc}"

    def run_script(self, lines) -> List[str]:
        """Execute a sequence of commands, returning all outputs."""

        return [self.execute(line) for line in lines if line.strip()]

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, line: str) -> str:
        if not line:
            return ""
        parts = line.split(None, 1)
        cmd = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        handler = getattr(self, f"_cmd_{cmd}", None)
        if handler is None:
            return f"error: unknown command {cmd!r} (try 'help')"
        return handler(rest)

    # -- commands ------------------------------------------------------------

    def _cmd_help(self, rest: str) -> str:
        return (__doc__ or "").strip()

    def _cmd_units(self, rest: str) -> str:
        rows = []
        for name, ua in sorted(self.session.analysis.units.items()):
            mark = ">" if name == self.session.current_unit else " "
            rows.append(
                f"{mark} {name:<12} {ua.unit.kind:<11} "
                f"{len(ua.loops)} loop(s), "
                f"{len(ua.parallel_loops())} parallelizable"
            )
        return "\n".join(rows)

    def _cmd_unit(self, rest: str) -> str:
        self.session.select_unit(rest.strip())
        return f"unit {rest.strip().lower()}"

    def _cmd_loops(self, rest: str) -> str:
        rows = []
        for lrow in loop_pane(self.session):
            sel = ">" if self.session.loop_index == lrow.index else " "
            indent = "  " * (lrow.depth - 1)
            rows.append(
                f"{sel} [{lrow.index}] {indent}do {lrow.header[3:]:<20} "
                f"line {lrow.line:<4} {lrow.verdict}"
            )
        return "\n".join(rows) if rows else "(no loops)"

    def _cmd_select(self, rest: str) -> str:
        self.session.select_loop(int(rest.strip()))
        loop = self.session.selected_loop
        assert loop is not None
        return f"selected loop {loop.var} at line {loop.line}"

    def _cmd_deps(self, rest: str) -> str:
        rows = dependence_pane(self.session)
        if not rows:
            return "(no dependences match the filter)"
        out = []
        for r in rows:
            note = f"  [{r.note}]" if r.note else ""
            out.append(
                f"#{r.dep_id:<3} {r.kind:<7} {r.var:<10} {r.vector:<10} "
                f"{r.marking:<9} {r.src_line:>4} -> {r.dst_line:<4}"
                f" {r.test}{note}"
            )
        return "\n".join(out)

    def _cmd_filter(self, rest: str) -> str:
        self.session.dep_filter = DependenceFilter.parse(rest)
        return f"dependence filter: {self.session.dep_filter.describe()}"

    def _cmd_viewsrc(self, rest: str) -> str:
        f = SourceFilter()
        for token in rest.split():
            if token == "loops":
                f.loops_only = True
            elif token.startswith("text="):
                f.contains = token[5:]
            elif token == "all":
                f = SourceFilter()
            else:
                return f"error: unknown source filter token {token!r}"
        self.session.src_filter = f
        return f"source filter: {f.describe()}"

    def _cmd_mark(self, rest: str) -> str:
        parts = rest.split()
        if len(parts) != 2:
            return "error: usage: mark <dep-id> accepted|rejected|pending"
        return self.session.mark_dependence(int(parts[0]), parts[1].lower())

    def _cmd_assert(self, rest: str) -> str:
        return self.session.add_assertion(rest)

    def _cmd_classify(self, rest: str) -> str:
        parts = rest.split()
        if len(parts) != 2:
            return "error: usage: classify <var> private|shared"
        return self.session.reclassify(parts[0], parts[1].lower())

    def _cmd_advice(self, rest: str) -> str:
        name, kwargs = self._parse_transform_args(rest)
        advice = self.session.diagnose(name, **kwargs)
        return f"{name}: {advice.describe()}"

    def _cmd_apply(self, rest: str) -> str:
        name, kwargs = self._parse_transform_args(rest)
        return self.session.apply(name, **kwargs)

    def _parse_transform_args(self, rest: str):
        parts = rest.split()
        if not parts:
            raise PedError("usage: apply <transformation> [key=value ...]")
        name = parts[0]
        kwargs = {}
        for token in parts[1:]:
            if "=" not in token:
                raise PedError(f"bad transformation argument {token!r}")
            key, value = token.split("=", 1)
            if key in ("factor", "size", "line"):
                kwargs[key] = int(value)
            else:
                kwargs[key] = value
        return name, kwargs

    def _cmd_edit(self, rest: str) -> str:
        # edit A B | replacement text (may contain \n escapes)
        head, sep, text = rest.partition("|")
        parts = head.split()
        if len(parts) != 2 or not sep:
            return "error: usage: edit <first> <last> | <replacement>"
        new_text = text.strip().replace("\\n", "\n")
        return self.session.edit(int(parts[0]), int(parts[1]), new_text)

    def _cmd_vars(self, rest: str) -> str:
        rows = variable_pane(self.session)
        if not rows:
            return "(select a loop)"
        out = []
        for r in rows:
            star = "*" if r.user_override else " "
            out.append(f"{star}{r.name:<12} {r.classification:<10} {r.detail}")
        return "\n".join(out)

    def _cmd_show(self, rest: str) -> str:
        return render_window(self.session)

    def _cmd_ranking(self, rest: str) -> str:
        out = []
        for cost, unit, idx, nest in ranked_loops(self.session)[:12]:
            out.append(
                f"{cost:>12.0f}  {unit:<12} loop[{idx}] {nest.loop.var} "
                f"line {nest.loop.line}"
            )
        return "\n".join(out)

    def _cmd_next(self, rest: str) -> str:
        return goto_hottest(self.session)

    def _cmd_summary(self, rest: str) -> str:
        out = []
        for unit, par, total in self.session.parallel_summary():
            out.append(f"{unit:<12} {par}/{total} loops parallelizable")
        return "\n".join(out)

    def _cmd_stats(self, rest: str) -> str:
        """Incremental-engine observability: stage timers, cache hits,
        plus the merged service metrics (same keys as the server's
        ``metrics`` op)."""

        from ..service.metrics import merged_metrics, render_metrics

        engine = self.session.engine
        metrics = merged_metrics(
            engine.stats, pool=engine.pool, memo=engine.shared_memo
        )
        return engine.stats.render() + "\n\n" + render_metrics(metrics)

    def _cmd_graph(self, rest: str) -> str:
        """The pipeline-node graph: last analysis's per-node outcomes
        (entry node, hit/recomputed/skipped states), or with ``plan
        INPUT...`` what a change to the named inputs would re-run."""

        engine = self.session.engine
        parts = rest.split()
        if parts and parts[0] == "plan":
            if len(parts) < 2:
                return "error: graph plan needs input names (e.g. 'assertions')"
            from ..pipeline.graph import GraphError

            try:
                plan = engine.plan(parts[1:])
            except GraphError as exc:
                return f"error: {exc}"
            would = ", ".join(plan["invalidated"]) or "(nothing)"
            return (
                f"entry: {plan['entry'] or '(nothing)'}\n"
                f"would re-run: {would}"
            )
        report = engine.node_report()
        rows = [f"entry: {report['entry'] or '(pure replay)'}"]
        for row in report["nodes"]:
            rows.append(f"  {row['node']:<12} {row['state']}")
        return "\n".join(rows)

    def _cmd_callgraph(self, rest: str) -> str:
        """The program's call graph ('dot' argument emits Graphviz)."""

        from .callgraph_view import ascii_tree, to_dot

        if rest.strip() == "dot":
            return to_dot(self.session.analysis)
        from ..perf.estimator import PerformanceEstimator

        est = PerformanceEstimator()
        costs = est.compute_unit_costs(self.session.analysis)
        return ascii_tree(self.session.analysis, costs)

    def _cmd_check(self, rest: str) -> str:
        """Composition Editor: cross-procedure consistency checks."""

        from .composition import check_composition

        issues = check_composition(self.session.sf)
        if not issues:
            return "no cross-procedure inconsistencies found"
        return "\n".join(str(i) for i in issues)

    def _cmd_estimate(self, rest: str) -> str:
        """Static performance estimate for the selected loop."""

        from ..perf.estimator import PerformanceEstimator

        loop = self.session.selected_loop
        if loop is None:
            return "error: select a loop first"
        est = PerformanceEstimator()
        est.compute_unit_costs(self.session.analysis)
        ce = est.loop_estimate(loop, self.session.unit_analysis)
        return (
            f"trip ≈ {ce.trip:.0f}; sequential ≈ {ce.sequential:.0f} cycles; "
            f"parallel ≈ {ce.parallel:.0f} cycles "
            f"(predicted speedup {ce.speedup:.2f}x on "
            f"{est.machine.n_procs} procs)"
        )

    def _cmd_profile(self, rest: str) -> str:
        """Interpreter-based loop profile (the gprof/Forge substitute)."""

        from ..perf.profiler import profile_program

        try:
            profile = profile_program(self.session.sf)
        except Exception as exc:  # interpreter needs a runnable main
            return f"error: cannot profile: {exc}"
        out = [f"{'unit':<12} {'line':>5} {'var':>4} {'iterations':>11} {'avg trip':>9}"]
        for lp in profile.hottest_loops(10):
            out.append(
                f"{lp.unit:<12} {lp.line:>5} {lp.var:>4} "
                f"{lp.iterations:>11} {lp.avg_trip:>9.1f}"
            )
        return "\n".join(out)

    def _cmd_goto(self, rest: str) -> str:
        """Navigate to a dependence's endpoints: show both source lines."""

        try:
            dep_id = int(rest.strip())
        except ValueError:
            return "error: usage: goto <dep-id>"
        dep = self.session.find_dependence(dep_id)
        lines = self.session.source.splitlines()

        def show(lineno: int) -> str:
            if 1 <= lineno <= len(lines):
                return f"{lineno:>5} {lines[lineno - 1].strip()}"
            return f"{lineno:>5} ???"

        return (
            f"dependence #{dep_id}: {dep.kind} on {dep.var} {dep.vector_str()}\n"
            f"  source: {show(dep.src_line)}\n"
            f"  sink:   {show(dep.dst_line)}"
        )

    def _cmd_undo(self, rest: str) -> str:
        self.session.undo()
        return "undone"

    def _cmd_redo(self, rest: str) -> str:
        self.session.redo()
        return "redone"

    def _cmd_journal(self, rest: str) -> str:
        records = self.session.journal.records
        if not records:
            return "journal empty"
        out = [
            f"{len(records)} record(s), undo depth "
            f"{self.session.undo_depth}, redo depth "
            f"{self.session.redo_depth}"
        ]
        for i, record in enumerate(records):
            arg_text = " ".join(
                f"{k}={v!r}" for k, v in sorted(record.args.items())
            )
            out.append(f"  [{i:>4}] {record.op:<10} {arg_text}".rstrip())
        return "\n".join(out)

    def _cmd_source(self, rest: str) -> str:
        return self.session.source
