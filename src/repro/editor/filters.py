"""View filtering.

"View filtering emphasizes or conceals parts of the book as specified by
a user."  Two filter kinds, matching the two panes that need them:

* :class:`DependenceFilter` — restricts the dependence pane by edge type,
  variable, marking and carried/independent status;
* :class:`SourceFilter` — restricts the source pane by text match or to
  loop headers only (the "show me the loop structure" view).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..dependence.graph import Dependence


@dataclass
class DependenceFilter:
    """Predicate over dependence edges; ``None`` fields mean "any"."""

    kinds: Optional[Set[str]] = None  # {'true','anti','output','input','control'}
    var: Optional[str] = None
    markings: Optional[Set[str]] = None
    carried_only: bool = False
    independent_only: bool = False
    hide_control: bool = True

    def matches(self, dep: Dependence) -> bool:
        if self.hide_control and dep.kind == "control" and (
            self.kinds is None or "control" not in self.kinds
        ):
            return False
        if self.kinds is not None and dep.kind not in self.kinds:
            return False
        if self.var is not None and dep.var != self.var.lower():
            return False
        if self.markings is not None and dep.marking not in self.markings:
            return False
        if self.carried_only and not dep.loop_carried:
            return False
        if self.independent_only and dep.loop_carried:
            return False
        return True

    def candidates(self, graph) -> list:
        """Narrowest candidate list the graph's indices can provide.

        A variable filter starts from the per-variable index instead of
        every edge; callers still apply :meth:`matches` to each
        candidate (index order is insertion order, so results match a
        full scan exactly).
        """

        if self.var is not None:
            return graph.with_var(self.var.lower())
        return graph.edges

    def describe(self) -> str:
        parts = []
        if self.kinds:
            parts.append("type in {" + ",".join(sorted(self.kinds)) + "}")
        if self.var:
            parts.append(f"var={self.var}")
        if self.markings:
            parts.append("marking in {" + ",".join(sorted(self.markings)) + "}")
        if self.carried_only:
            parts.append("carried")
        if self.independent_only:
            parts.append("independent")
        return " & ".join(parts) if parts else "all"

    @staticmethod
    def parse(spec: str) -> "DependenceFilter":
        """Parse the command-language filter spec.

        Examples: ``type=true,anti var=a marking=pending carried``.
        """

        f = DependenceFilter()
        for token in spec.split():
            low = token.lower()
            if low.startswith("type="):
                f.kinds = set(low[5:].split(","))
            elif low.startswith("var="):
                f.var = low[4:]
            elif low.startswith("marking="):
                f.markings = set(low[8:].split(","))
            elif low == "carried":
                f.carried_only = True
            elif low == "independent":
                f.independent_only = True
            elif low == "control":
                f.hide_control = False
            elif low == "all":
                f = DependenceFilter()
            else:
                raise ValueError(f"unknown filter token {token!r}")
        return f


@dataclass
class SourceFilter:
    """Predicate over source lines for the source pane."""

    contains: Optional[str] = None
    loops_only: bool = False

    def matches(self, text: str) -> bool:
        if self.loops_only:
            stripped = text.strip().lower()
            if not (stripped.startswith("do ") or stripped.startswith("end do")):
                return False
        if self.contains is not None and self.contains.lower() not in text.lower():
            return False
        return True

    def describe(self) -> str:
        parts = []
        if self.loops_only:
            parts.append("loops")
        if self.contains:
            parts.append(f"contains {self.contains!r}")
        return " & ".join(parts) if parts else "all"
