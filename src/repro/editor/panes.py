"""Pane content builders — the book metaphor's structured views.

Each function produces plain rows (lists of strings / dataclass rows)
from the session state; :mod:`repro.editor.display` lays them out into
the Ped window.  Keeping content and layout separate makes the panes
testable without rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .session import PedSession
from .variables import VariableRow, classify_variables


@dataclass
class SourceRow:
    lineno: int
    text: str
    selected: bool = False
    parallel: bool = False


def source_pane(session: PedSession, context: int = 0) -> List[SourceRow]:
    """Source lines (view-filtered) with the selected loop highlighted."""

    loop = session.selected_loop
    sel_range: Optional[Tuple[int, int]] = None
    if loop is not None:
        last = loop.line
        for st in session.unit_analysis.body_statements(loop):
            last = max(last, st.line)
        sel_range = (loop.line, last)
    rows: List[SourceRow] = []
    for i, text in enumerate(session.source.splitlines(), start=1):
        if not session.src_filter.matches(text):
            continue
        selected = sel_range is not None and sel_range[0] <= i <= sel_range[1]
        rows.append(
            SourceRow(i, text.rstrip(), selected, "c$par doall" in text)
        )
    return rows


@dataclass
class LoopRow:
    index: int
    depth: int
    header: str
    line: int
    parallel: bool
    verdict: str  # "parallel" | "serial: <reason>" | "DOALL"


def loop_pane(session: PedSession) -> List[LoopRow]:
    """The loop list of the current unit with parallelization verdicts."""

    rows: List[LoopRow] = []
    ua = session.unit_analysis
    for idx, nest in enumerate(ua.loops):
        info = ua.loop_info[nest.loop.sid]
        loop = nest.loop
        if loop.parallel:
            verdict = "DOALL"
        elif info.parallelizable:
            verdict = "parallelizable"
        else:
            first = info.obstacles[0] if info.obstacles else "?"
            verdict = f"serial: {first}"
        header = f"do {loop.var} = ..."
        rows.append(
            LoopRow(idx, nest.depth, header, loop.line, loop.parallel, verdict)
        )
    return rows


@dataclass
class DepRow:
    dep_id: int
    kind: str
    var: str
    vector: str
    level: int
    marking: str
    src_line: int
    dst_line: int
    test: str
    note: str


def dependence_pane(session: PedSession) -> List[DepRow]:
    """Dependence rows for the current selection, post-filter."""

    rows: List[DepRow] = []
    for dep in session.dependences():
        rows.append(
            DepRow(
                dep.id,
                dep.kind,
                dep.var,
                dep.vector_str(),
                dep.level,
                dep.marking,
                dep.src_line,
                dep.dst_line,
                dep.test,
                dep.reason,
            )
        )
    rows.sort(key=lambda r: (r.kind != "true", r.var, r.dep_id))
    return rows


def variable_pane(session: PedSession) -> List[VariableRow]:
    """Variable classification rows for the selected loop (or empty)."""

    info = session.selected_info
    if info is None:
        return []
    overrides = session.overrides.get(session.current_unit, {}).get(
        session.loop_index or 0, {}
    )
    return classify_variables(info, session.unit.symtab, overrides)
