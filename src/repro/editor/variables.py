"""The variable pane: per-loop classification of every variable.

For the selected loop each variable is classified as the code generator
would treat it: the loop **index**, **private** (killed every iteration),
**reduction**, **induction**, or **shared** (with a note when shared
accesses carry dependences).  Users may *reclassify* a variable —
"users performed … variable reclassification to reflect their perception
of the true program state" — which overrides the analysis verdict and
rejects the corresponding dependences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..dependence.driver import LoopInfo
from ..fortran.ast_nodes import walk_statements
from ..fortran.symbols import SymbolTable


@dataclass
class VariableRow:
    """One row of the variable pane."""

    name: str
    classification: str  # index | private | reduction | induction | shared
    detail: str = ""
    user_override: bool = False


def classify_variables(
    info: LoopInfo,
    table: SymbolTable,
    overrides: Optional[Dict[str, str]] = None,
) -> List[VariableRow]:
    """Classification rows for all variables referenced in the loop."""

    overrides = overrides or {}
    loop = info.loop
    from ..analysis.defuse import stmt_defs, stmt_uses

    mentioned: Set[str] = set()
    for st in walk_statements(loop.body):
        mentioned |= stmt_uses(st, table)
        _, may = stmt_defs(st, table)
        mentioned |= may
    mentioned.add(loop.var)

    privatizable = {p.name: p for p in info.privatizable}
    reductions = {r.var: r for r in info.reductions}
    inductions = {iv.name: iv for iv in info.inductions}
    dep_vars: Dict[str, int] = {}
    for d in info.carried:
        if d.blocks_parallelization:
            dep_vars[d.var] = dep_vars.get(d.var, 0) + 1

    rows: List[VariableRow] = []
    for name in sorted(mentioned):
        sym = table.get(name)
        if sym is not None and sym.storage == "parameter":
            continue
        override = overrides.get(name)
        if override is not None:
            rows.append(
                VariableRow(name, override, "user reclassification", True)
            )
            continue
        if name == loop.var:
            rows.append(VariableRow(name, "index", "loop control variable"))
        elif name in reductions:
            red = reductions[name]
            rows.append(
                VariableRow(name, "reduction", f"{red.op}-reduction")
            )
        elif name in inductions:
            rows.append(
                VariableRow(
                    name, "induction", f"step {inductions[name].step}"
                )
            )
        elif name in privatizable:
            detail = "killed every iteration"
            if privatizable[name].needs_last_value:
                detail += "; last value needed"
            rows.append(VariableRow(name, "private", detail))
        elif name in info.privatizable_arrays:
            rows.append(
                VariableRow(
                    name, "private", "array killed every iteration"
                )
            )
        else:
            detail = ""
            if name in dep_vars:
                detail = f"{dep_vars[name]} carried dependence(s)"
            rows.append(VariableRow(name, "shared", detail))
    return rows
