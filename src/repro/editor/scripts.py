"""Replayable user sessions.

The workshop evaluation is a set of *user stories*: sequences of editor
actions that took each application from serial to parallel.  This module
replays them deterministically — the reproduction's substitute for human
participants — and records full transcripts for inspection.

Since sessions are event-sourced, every scripted run doubles as a
replayable log: the transcript carries the session's mutation journal in
wire form, and :func:`replay_transcript` rebuilds the exact final state
from it without re-running the command interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..interproc.program import FeatureSet
from .commands import CommandInterpreter
from .journal import SessionJournal, replay_journal
from .session import PedSession


@dataclass
class SessionTranscript:
    """The full record of one replayed session."""

    program: str
    exchanges: List[Tuple[str, str]] = field(default_factory=list)
    final_source: str = ""
    errors: List[str] = field(default_factory=list)
    #: The session's mutation journal (wire form): the canonical,
    #: serializable log this script reduced to.
    journal: Optional[Dict] = None

    @property
    def ok(self) -> bool:
        return not self.errors

    def render(self) -> str:
        out = [f"=== Ped session: {self.program} ==="]
        for command, reply in self.exchanges:
            out.append(f"ped> {command}")
            if reply:
                out.append(reply)
        return "\n".join(out)


def replay(
    program_name: str,
    features: Optional[FeatureSet] = None,
    extra_commands: Optional[List[str]] = None,
) -> Tuple[PedSession, SessionTranscript]:
    """Replay a suite program's scripted session; returns the live session
    and its transcript."""

    from ..workloads.suite import get_program

    prog = get_program(program_name)
    session = PedSession(prog.source, features=features)
    ped = CommandInterpreter(session)
    transcript = SessionTranscript(prog.name)
    for command in list(prog.script) + list(extra_commands or []):
        reply = ped.execute(command)
        transcript.exchanges.append((command, reply))
        if reply.startswith("error:"):
            transcript.errors.append(f"{command!r}: {reply}")
    transcript.final_source = session.source
    transcript.journal = session.journal.to_wire()
    return session, transcript


def replay_transcript(
    transcript: SessionTranscript,
    features: Optional[FeatureSet] = None,
    upto: Optional[int] = None,
) -> PedSession:
    """Rebuild the session a transcript recorded, straight from its
    journal — no command interpreter involved."""

    if transcript.journal is None:
        raise ValueError(
            f"transcript for {transcript.program!r} carries no journal"
        )
    journal = SessionJournal.from_wire(transcript.journal)
    return replay_journal(journal, upto, features=features)


def replay_all(features: Optional[FeatureSet] = None) -> List[SessionTranscript]:
    """Replay every suite session; returns the transcripts."""

    from ..workloads.suite import SUITE

    out = []
    for name in SUITE:
        _, transcript = replay(name, features)
        out.append(transcript)
    return out
