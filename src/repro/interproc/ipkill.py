"""Interprocedural kill analysis (scalars and arrays).

*Scalar kill*: a formal or COMMON scalar is killed by a procedure when it
is assigned on **every** control-flow path before any use.  At a call site
inside a loop, a killed scalar carries no value between iterations, so the
loop-carried dependences through it disappear ("In the program nxsns,
interprocedural scalar Kill analysis reveals a scalar variable is killed
in a procedure invoked inside a loop").

*Array kill*: a formal or COMMON array is killed when the procedure
overwrites **all** of it before reading any of it.  We recognise the
canonical pattern — an unconditional top-level ``DO`` sweeping the full
declared extent with the loop index as subscript — plus transitive kills
through calls.  Array kill is what arc3d and slab2d need: a scratch array
fully rewritten inside the callee is effectively private to the iteration,
so the write-write and read-write dependences between iterations can be
discarded by privatizing the array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..analysis.symbolic import Linear, linear_of_expr
from ..fortran.ast_nodes import (
    ArrayRef,
    Assign,
    CallStmt,
    DoLoop,
    Expr,
    If,
    IOStmt,
    ProcedureUnit,
    Stmt,
    VarRef,
    walk_expr,
    walk_statements,
)
from ..fortran.symbols import SymbolTable
from .callgraph import CallGraph, CallSite
from .modref import Location, _locate, _name_at


@dataclass
class KillInfo:
    """Per-procedure kill summary over external locations."""

    scalars: Set[Location] = field(default_factory=set)
    arrays: Set[Location] = field(default_factory=set)


def compute_kills(cg: CallGraph) -> Dict[str, KillInfo]:
    """Bottom-up kill summaries for all units."""

    out: Dict[str, KillInfo] = {name: KillInfo() for name in cg.units}
    for scc in cg.sccs_bottom_up():
        changed = True
        while changed:
            changed = False
            for name in scc:
                new = _unit_kills(cg.units[name], cg, out)
                if new.scalars != out[name].scalars or new.arrays != out[name].arrays:
                    out[name] = new
                    changed = True
    return out


def _unit_kills(
    unit: ProcedureUnit, cg: CallGraph, summaries: Dict[str, KillInfo]
) -> KillInfo:
    table: SymbolTable = unit.symtab  # type: ignore[assignment]
    info = KillInfo()
    sites_by_sid: Dict[int, List[CallSite]] = {}
    for site in cg.sites_in(unit.name):
        sites_by_sid.setdefault(site.sid, []).append(site)

    killed: Set[str] = set()  # names killed so far on ALL paths
    read: Set[str] = set()  # names read before being killed

    def note_reads(expr: Expr) -> None:
        for node in walk_expr(expr):
            if isinstance(node, VarRef) and node.name != "*":
                if node.name not in killed:
                    read.add(node.name)
            elif isinstance(node, ArrayRef):
                if node.name not in killed:
                    read.add(node.name)
                for sub in node.subs:
                    note_reads(sub)

    def scan(body: List[Stmt], conditional: bool) -> None:
        for st in body:
            if isinstance(st, Assign):
                note_reads(st.expr)
                if isinstance(st.target, ArrayRef):
                    for sub in st.target.subs:
                        note_reads(sub)
                if isinstance(st.target, VarRef) and not conditional:
                    killed.add(st.target.name)
            elif isinstance(st, DoLoop):
                note_reads(st.start)
                note_reads(st.end)
                if st.step is not None:
                    note_reads(st.step)
                arr = _full_sweep_target(st, table)
                if arr is not None and not conditional:
                    # The loop overwrites the whole array; its own reads of
                    # the array inside the body (if any) were noted by the
                    # recursive scan *before* marking the kill.
                    scan(st.body, True)
                    if arr not in read:
                        killed.add(arr)
                    continue
                scan(st.body, True)
            elif isinstance(st, If):
                for cond, arm in st.arms:
                    if cond is not None:
                        note_reads(cond)
                    scan(arm, True)
            elif isinstance(st, CallStmt):
                call_kills: Set[str] = set()
                for site in sites_by_sid.get(st.sid, ()):
                    callee = summaries.get(site.callee)
                    if callee is None:
                        continue
                    for loc in callee.scalars | callee.arrays:
                        got = _name_at(loc, site, table)
                        if got is not None:
                            call_kills.add(got)
                # Arguments the callee kills are written before any read;
                # everything else it might read.
                for arg in st.args:
                    if isinstance(arg, VarRef) and arg.name in call_kills:
                        continue
                    note_reads(arg)
                if not conditional:
                    killed.update(call_kills)
            elif isinstance(st, IOStmt):
                for e in list(st.spec) + list(st.items):
                    if st.kind == "read" and isinstance(e, VarRef):
                        if not conditional:
                            killed.add(e.name)
                    else:
                        note_reads(e)
            else:
                return  # GOTO/RETURN/STOP: stop the straight-line scan

    scan(unit.body, False)
    for name in killed - read:
        loc = _locate(name, table)
        if loc is None:
            continue
        sym = table.get(name)
        if sym is not None and sym.is_array:
            info.arrays.add(loc)
        else:
            info.scalars.add(loc)
    return info


def _full_sweep_target(loop: DoLoop, table: SymbolTable) -> Optional[str]:
    """If ``loop`` unconditionally assigns ``a(i)`` over a's full declared
    extent (possibly via a perfect inner nest for higher ranks), return the
    array name."""

    # Collect the perfect nest.
    nest: List[DoLoop] = [loop]
    body = loop.body
    while len(body) == 1 and isinstance(body[0], DoLoop):
        nest.append(body[0])
        body = body[0].body
    # Find an unconditional assignment a(i1, …, ik) with subscripts exactly
    # the nest variables (in any order).
    for st in body:
        if not isinstance(st, Assign) or not isinstance(st.target, ArrayRef):
            continue
        name = st.target.name
        sym = table.get(name)
        if sym is None or not sym.is_array or sym.rank != len(st.target.subs):
            continue
        nest_vars = {lp.var: lp for lp in nest}
        if len(st.target.subs) > len(nest):
            continue
        covered = True
        for d, sub in enumerate(st.target.subs):
            if not isinstance(sub, VarRef) or sub.name not in nest_vars:
                covered = False
                break
            lp = nest_vars[sub.name]
            lo_decl, hi_decl = sym.dims[d]
            lo_decl_lin = (
                linear_of_expr(lo_decl, table)
                if lo_decl is not None
                else Linear.constant(1)
            )
            hi_decl_lin = linear_of_expr(hi_decl, table)
            lo_lin = linear_of_expr(lp.start, table)
            hi_lin = linear_of_expr(lp.end, table)
            if (lo_lin - lo_decl_lin).constant_value() != 0:
                covered = False
                break
            if (hi_lin - hi_decl_lin).constant_value() != 0:
                covered = False
                break
            if lp.step is not None:
                step_lin = linear_of_expr(lp.step, table)
                if step_lin.constant_value() != 1:
                    covered = False
                    break
        if covered:
            return name
    return None


def privatizable_arrays(
    loop: DoLoop,
    unit: ProcedureUnit,
    cg: Optional[CallGraph] = None,
    kills: Optional[Dict[str, KillInfo]] = None,
) -> Set[str]:
    """Arrays killed (fully overwritten before any read) on every iteration
    of ``loop`` — candidates for array privatization.

    A read of the array before the kill point disqualifies it; kills come
    either from a local full sweep or from a call whose summary kills the
    array.
    """

    table: SymbolTable = unit.symtab  # type: ignore[assignment]
    killed: Set[str] = set()
    read_first: Set[str] = set()
    sites_by_sid: Dict[int, List[CallSite]] = {}
    if cg is not None:
        for site in cg.sites_in(unit.name):
            sites_by_sid.setdefault(site.sid, []).append(site)

    def note_reads(expr: Expr) -> None:
        for node in walk_expr(expr):
            if isinstance(node, ArrayRef) and node.name not in killed:
                read_first.add(node.name)

    for st in loop.body:
        if isinstance(st, Assign):
            note_reads(st.expr)
            if isinstance(st.target, ArrayRef):
                for sub in st.target.subs:
                    note_reads(sub)
        elif isinstance(st, DoLoop):
            arr = _full_sweep_target(st, table)
            for inner in walk_statements(st.body):
                if isinstance(inner, Assign):
                    note_reads(inner.expr)
            if arr is not None and arr not in read_first:
                killed.add(arr)
        elif isinstance(st, CallStmt):
            for arg in st.args:
                note_reads(arg)
            if kills is not None:
                for site in sites_by_sid.get(st.sid, ()):
                    summary = kills.get(site.callee)
                    if summary is None:
                        continue
                    for loc in summary.arrays:
                        name = _name_at(loc, site, table)
                        if name is not None and name not in read_first:
                            killed.add(name)
        elif isinstance(st, If):
            for cond, arm in st.arms:
                if cond is not None:
                    note_reads(cond)
                for inner in walk_statements(arm):
                    if isinstance(inner, Assign):
                        note_reads(inner.expr)
    return killed - read_first


#: Public alias: one unit's kill transfer function, for incremental
#: re-fixpointing by the engine.
unit_kills = _unit_kills
