"""Flow-insensitive interprocedural MOD/REF analysis (Banning).

For every procedure we summarise which *externally visible* locations it
may modify or reference: formal parameters (by position) and COMMON
variables (by block name and member position).  Summaries propagate
bottom-up over the call graph; call sites translate callee formals to
caller actuals and callee COMMON slots to the caller's declarations of the
same block.

The result powers :class:`PreciseEffects`, the drop-in replacement for the
front end's :class:`ConservativeEffects`: with it, a loop containing
``CALL SMOOTH(B, N)`` no longer conservatively clobbers every COMMON
variable — only what SMOOTH really touches ("the sections entry indicates
that scalar side-effect analysis … reduces the number of dependences on a
loop containing a procedure call", Table 3 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..analysis.defuse import SideEffects, stmt_defs, stmt_uses
from ..fortran.ast_nodes import (
    ArrayRef,
    Expr,
    ProcedureUnit,
    VarRef,
    walk_statements,
)
from ..fortran.symbols import COMMON, FORMAL, SymbolTable
from .callgraph import CallGraph, CallSite

#: External location: ("formal", position) or ("common", block, index).
Location = Tuple


@dataclass
class ModRefInfo:
    """MOD/REF summary of one procedure over external locations."""

    mod: Set[Location] = field(default_factory=set)
    ref: Set[Location] = field(default_factory=set)


def _locate(name: str, table: SymbolTable) -> Optional[Location]:
    sym = table.get(name)
    if sym is None:
        return None
    if sym.storage == FORMAL:
        return ("formal", sym.formal_index)
    if sym.storage == COMMON:
        members = table.common_blocks.get(sym.common_block or "", [])
        if name in members:
            return ("common", sym.common_block, members.index(name))
    return None


def _name_at(loc: Location, site: CallSite, caller_table: SymbolTable) -> Optional[str]:
    """Translate a callee location into a caller-visible name."""

    if loc[0] == "formal":
        idx = loc[1]
        if idx is None or idx >= len(site.args):
            return None
        arg = site.args[idx]
        if isinstance(arg, VarRef) and arg.name != "*":
            return arg.name
        if isinstance(arg, ArrayRef):
            return arg.name
        return None  # expression actual: a value copy, nothing aliased
    if loc[0] == "common":
        block, pos = loc[1], loc[2]
        members = caller_table.common_blocks.get(block, [])
        if pos < len(members):
            return members[pos]
        return None
    return None


def compute_modref(cg: CallGraph) -> Dict[str, ModRefInfo]:
    """Bottom-up MOD/REF summaries for every unit of the call graph."""

    summaries: Dict[str, ModRefInfo] = {name: ModRefInfo() for name in cg.units}
    for scc in cg.sccs_bottom_up():
        changed = True
        while changed:
            changed = False
            for name in scc:
                new = _local_summary(cg.units[name], cg, summaries)
                if new.mod != summaries[name].mod or new.ref != summaries[name].ref:
                    summaries[name] = new
                    changed = True
    return summaries


def _local_summary(
    unit: ProcedureUnit,
    cg: CallGraph,
    summaries: Dict[str, ModRefInfo],
) -> ModRefInfo:
    table: SymbolTable = unit.symtab  # type: ignore[assignment]
    info = ModRefInfo()
    sites_by_sid: Dict[int, List[CallSite]] = {}
    for site in cg.sites_in(unit.name):
        sites_by_sid.setdefault(site.sid, []).append(site)

    # Direct accesses: a neutral effects provider that ignores calls, since
    # call effects are folded in explicitly below.
    neutral = _NeutralEffects()
    for st in walk_statements(unit.body):
        must, may = stmt_defs(st, table, neutral)
        uses = stmt_uses(st, table, neutral)
        for v in may:
            loc = _locate(v, table)
            if loc is not None:
                info.mod.add(loc)
        for v in uses:
            loc = _locate(v, table)
            if loc is not None:
                info.ref.add(loc)
        # Fold callee summaries through each call at this statement.
        for site in sites_by_sid.get(st.sid, ()):
            callee = summaries.get(site.callee)
            if callee is None:
                continue
            callee_unit = cg.units[site.callee]
            del callee_unit
            for loc in callee.mod:
                name = _name_at(loc, site, table)
                if name is not None:
                    up = _locate(name, table)
                    if up is not None:
                        info.mod.add(up)
            for loc in callee.ref:
                name = _name_at(loc, site, table)
                if name is not None:
                    up = _locate(name, table)
                    if up is not None:
                        info.ref.add(up)
    return info


class _NeutralEffects(SideEffects):
    """Treats calls as touching nothing (used while building summaries)."""

    def mod(self, callee, args, table):
        return set()

    def ref(self, callee, args, table):
        names = set()
        from ..analysis.defuse import walk_expr_args

        for arg in args:
            names |= walk_expr_args(arg)
        return names


class PreciseEffects(SideEffects):
    """Call side effects backed by interprocedural MOD/REF summaries.

    Unknown callees (externals) fall back to the conservative assumption.
    When kill summaries are supplied (interprocedural kill analysis),
    ``ref`` excludes locations the callee kills before any use — their
    incoming value cannot matter — and ``kill`` upgrades them to must-defs.
    """

    def __init__(
        self,
        cg: CallGraph,
        summaries: Dict[str, ModRefInfo],
        kills: Optional[Dict[str, "object"]] = None,
    ) -> None:
        self.cg = cg
        self.summaries = summaries
        self.kills = kills or {}
        from ..analysis.defuse import ConservativeEffects

        self._fallback = ConservativeEffects()

    def _translate(
        self, locs: Set[Location], callee: str, args: List[Expr], table: SymbolTable
    ) -> Set[str]:
        names: Set[str] = set()
        site = CallSite("", callee, -1, args, 0)
        for loc in locs:
            name = _name_at(loc, site, table)
            if name is not None:
                names.add(name)
        return names

    def mod(self, callee: str, args: List[Expr], table: SymbolTable) -> Set[str]:
        summary = self.summaries.get(callee)
        if summary is None:
            return self._fallback.mod(callee, args, table)
        return self._translate(summary.mod, callee, args, table)

    def ref(self, callee: str, args: List[Expr], table: SymbolTable) -> Set[str]:
        summary = self.summaries.get(callee)
        if summary is None:
            return self._fallback.ref(callee, args, table)
        names = self._translate(summary.ref, callee, args, table)
        names -= self.kill(callee, args, table)
        from ..analysis.defuse import walk_expr_args

        for arg in args:
            names |= walk_expr_args(arg)
        return names

    def kill(self, callee: str, args: List[Expr], table: SymbolTable) -> Set[str]:
        info = self.kills.get(callee)
        if info is None:
            return set()
        locs = set(getattr(info, "scalars", ())) | set(getattr(info, "arrays", ()))
        return self._translate(locs, callee, args, table)


#: Public alias: one unit's MOD/REF transfer function, for incremental
#: re-fixpointing by the engine.
local_summary = _local_summary
