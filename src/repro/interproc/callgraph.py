"""Call graph construction and SCC condensation.

The call graph drives every bottom-up summary computation (MOD/REF,
sections, kill) and the top-down interprocedural constant propagation.
Cycles (recursion) are condensed with Tarjan's algorithm; summary
computations iterate within an SCC until stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..fortran.ast_nodes import (
    CallStmt,
    Expr,
    FuncRef,
    ProcedureUnit,
    SourceFile,
    statement_exprs,
    walk_expr,
    walk_statements,
)


@dataclass
class CallSite:
    """One call (CALL statement or function reference) in a caller."""

    caller: str
    callee: str
    sid: int
    args: List[Expr]
    line: int
    is_function: bool = False


@dataclass
class CallGraph:
    """Callers, callees and call sites of a whole program."""

    units: Dict[str, ProcedureUnit] = field(default_factory=dict)
    sites: List[CallSite] = field(default_factory=list)
    callees: Dict[str, Set[str]] = field(default_factory=dict)
    callers: Dict[str, Set[str]] = field(default_factory=dict)

    def sites_in(self, caller: str) -> List[CallSite]:
        return [s for s in self.sites if s.caller == caller]

    def sites_of(self, callee: str) -> List[CallSite]:
        return [s for s in self.sites if s.callee == callee]

    def sccs_bottom_up(self) -> List[List[str]]:
        """SCCs in reverse topological order (callees before callers)."""

        return _tarjan(self.units.keys(), self.callees)

    def topo_top_down(self) -> List[List[str]]:
        """SCCs with callers before callees (for constant propagation)."""

        return list(reversed(self.sccs_bottom_up()))

    def roots(self) -> List[str]:
        return [u for u in self.units if not self.callers.get(u)]


def build_callgraph(sf: SourceFile) -> CallGraph:
    """Build the call graph of ``sf``; unknown callees are ignored (they
    are treated as opaque externals by the effect analyses)."""

    cg = CallGraph()
    for unit in sf.units:
        cg.units[unit.name] = unit
        cg.callees.setdefault(unit.name, set())
        cg.callers.setdefault(unit.name, set())
    for unit in sf.units:
        for st in walk_statements(unit.body):
            if isinstance(st, CallStmt) and st.name in cg.units:
                cg.sites.append(
                    CallSite(unit.name, st.name, st.sid, list(st.args), st.line)
                )
                cg.callees[unit.name].add(st.name)
                cg.callers[st.name].add(unit.name)
            for top in statement_exprs(st):
                for node in walk_expr(top):
                    if (
                        isinstance(node, FuncRef)
                        and not node.intrinsic
                        and node.name in cg.units
                    ):
                        cg.sites.append(
                            CallSite(
                                unit.name,
                                node.name,
                                st.sid,
                                list(node.args),
                                node.line,
                                is_function=True,
                            )
                        )
                        cg.callees[unit.name].add(node.name)
                        cg.callers[node.name].add(unit.name)
    return cg


def _tarjan(nodes, edges: Dict[str, Set[str]]) -> List[List[str]]:
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    out: List[List[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(edges.get(v, ())):
            if w not in index:
                strongconnect(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            scc: List[str] = []
            while True:
                w = stack.pop()
                on_stack.discard(w)
                scc.append(w)
                if w == v:
                    break
            out.append(sorted(scc))

    for v in sorted(nodes):
        if v not in index:
            strongconnect(v)
    return out
