"""Whole-program analysis orchestration.

:func:`analyze_program` runs the interprocedural phases over a bound
:class:`SourceFile`, then the per-unit dependence driver with the derived
providers wired in.  :class:`FeatureSet` exposes one boolean per analysis
capability — the exact levers of the experiences paper's Table 3 — so the
evaluation harness can measure which feature unlocks which program.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..dependence.driver import AnalysisConfig, UnitAnalysis, analyze_unit
from ..dependence.tests import Oracle
from ..fortran.ast_nodes import SourceFile
from .callgraph import CallGraph, build_callgraph
from .ipconst import compute_ip_constants
from .ipkill import KillInfo, compute_kills, privatizable_arrays
from .modref import ModRefInfo, PreciseEffects, compute_modref
from .sections import SectionInfo, compute_sections, make_section_provider


@dataclass(frozen=True)
class FeatureSet:
    """Analysis capabilities, mirroring the Table 3 columns.

    ``dependence`` is the base capability and cannot be turned off; the
    others default to the full Ped configuration.
    """

    modref: bool = True  # interprocedural scalar side effects (MOD/REF)
    sections: bool = True  # interprocedural regular sections
    ip_constants: bool = True  # interprocedural constants
    scalar_kill: bool = True  # scalar kill analysis (incl. interprocedural)
    array_kill: bool = True  # interprocedural array kill → privatization
    reductions: bool = True  # reduction idiom recognition
    inductions: bool = True  # auxiliary induction recognition
    symbolic: bool = True  # symbolic/affine subscript analysis
    control: bool = True  # control dependences

    @staticmethod
    def minimal() -> "FeatureSet":
        """Dependence testing only — the 'naive automatic tool' baseline."""

        return FeatureSet(
            modref=False,
            sections=False,
            ip_constants=False,
            scalar_kill=False,
            array_kill=False,
            reductions=False,
            inductions=False,
            symbolic=True,
            control=True,
        )

    def with_feature(self, name: str, value: bool) -> "FeatureSet":
        return replace(self, **{name: value})


@dataclass
class ProgramAnalysis:
    """All program-level artifacts plus per-unit analyses."""

    source: SourceFile
    features: FeatureSet
    callgraph: CallGraph
    modref: Dict[str, ModRefInfo] = field(default_factory=dict)
    sections: Dict[str, SectionInfo] = field(default_factory=dict)
    kills: Dict[str, KillInfo] = field(default_factory=dict)
    ip_constants: Dict[str, Dict[str, object]] = field(default_factory=dict)
    units: Dict[str, UnitAnalysis] = field(default_factory=dict)

    def unit(self, name: str) -> UnitAnalysis:
        return self.units[name.lower()]

    def parallel_loop_count(self) -> int:
        return sum(len(ua.parallel_loops()) for ua in self.units.values())

    def loop_count(self) -> int:
        return sum(len(ua.loops) for ua in self.units.values())


def analyze_program(
    sf: SourceFile,
    features: Optional[FeatureSet] = None,
    oracle: Optional[Oracle] = None,
    oracles_by_unit: Optional[Dict[str, Oracle]] = None,
) -> ProgramAnalysis:
    """Analyze a bound source file with the given feature set.

    ``oracle`` (or ``oracles_by_unit``) injects user assertions into the
    symbolic machinery; sessions re-run this after each assertion or edit.
    """

    features = features or FeatureSet()
    cg = build_callgraph(sf)
    pa = ProgramAnalysis(sf, features, cg)

    if features.modref or features.sections or features.array_kill:
        pa.modref = compute_modref(cg)
    if features.scalar_kill or features.array_kill:
        pa.kills = compute_kills(cg)
        if not features.scalar_kill:
            for info in pa.kills.values():
                info.scalars.clear()
        if not features.array_kill:
            for info in pa.kills.values():
                info.arrays.clear()
    if features.sections:
        pa.sections = compute_sections(cg)
    if features.ip_constants:
        pa.ip_constants = compute_ip_constants(cg)

    effects = None
    if features.modref:
        effects = PreciseEffects(cg, pa.modref, pa.kills if features.scalar_kill else None)
    section_provider = None
    if features.sections:
        section_provider = make_section_provider(
            cg, pa.sections, pa.kills if features.array_kill else None
        )

    def arrays_fn(loop, unit):
        return privatizable_arrays(
            loop, unit, cg, pa.kills if features.array_kill else None
        )

    for name, unit in cg.units.items():
        unit_oracle = (oracles_by_unit or {}).get(name, oracle)
        config = AnalysisConfig(
            effects=effects,
            section_provider=section_provider,
            oracle=unit_oracle,
            inherited_constants=pa.ip_constants.get(name),
            use_constants=True,
            use_kill=features.scalar_kill,
            use_reductions=features.reductions,
            use_inductions=features.inductions,
            control_deps=features.control,
            privatizable_arrays_fn=arrays_fn if features.array_kill else None,
        )
        pa.units[name] = analyze_unit(unit, config)
    return pa
