"""Whole-program analysis orchestration.

:func:`analyze_program` runs the interprocedural phases over a bound
:class:`SourceFile`, then the per-unit dependence driver with the derived
providers wired in.  :class:`FeatureSet` exposes one boolean per analysis
capability — the exact levers of the experiences paper's Table 3 — so the
evaluation harness can measure which feature unlocks which program.

The pipeline is decomposed into stage functions (:func:`compute_summaries`,
:func:`kills_view`, :func:`build_providers`, :func:`unit_config`) that the
incremental engine (:mod:`repro.incremental`) calls independently, keeping
:func:`analyze_program` the from-scratch reference composition of the same
stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from ..dependence.driver import HOT_PATH, AnalysisConfig, UnitAnalysis, analyze_unit
from ..dependence.hierarchy import SharedPairMemo
from ..dependence.tests import Oracle
from ..fortran.ast_nodes import SourceFile
from .callgraph import CallGraph, build_callgraph
from .ipconst import compute_ip_constants
from .ipkill import KillInfo, compute_kills, privatizable_arrays
from .modref import ModRefInfo, PreciseEffects, compute_modref
from .sections import SectionInfo, compute_sections, make_section_provider


@dataclass(frozen=True)
class FeatureSet:
    """Analysis capabilities, mirroring the Table 3 columns.

    ``dependence`` is the base capability and cannot be turned off; the
    others default to the full Ped configuration.
    """

    modref: bool = True  # interprocedural scalar side effects (MOD/REF)
    sections: bool = True  # interprocedural regular sections
    ip_constants: bool = True  # interprocedural constants
    scalar_kill: bool = True  # scalar kill analysis (incl. interprocedural)
    array_kill: bool = True  # interprocedural array kill → privatization
    reductions: bool = True  # reduction idiom recognition
    inductions: bool = True  # auxiliary induction recognition
    symbolic: bool = True  # symbolic/affine subscript analysis
    control: bool = True  # control dependences

    @staticmethod
    def minimal() -> "FeatureSet":
        """Dependence testing only — the 'naive automatic tool' baseline."""

        return FeatureSet(
            modref=False,
            sections=False,
            ip_constants=False,
            scalar_kill=False,
            array_kill=False,
            reductions=False,
            inductions=False,
            symbolic=True,
            control=True,
        )

    def with_feature(self, name: str, value: bool) -> "FeatureSet":
        return replace(self, **{name: value})

    def needs_modref(self) -> bool:
        """MOD/REF summaries feed effects, sections and array kill."""

        return self.modref or self.sections or self.array_kill

    def needs_kills(self) -> bool:
        return self.scalar_kill or self.array_kill


@dataclass
class ProgramAnalysis:
    """All program-level artifacts plus per-unit analyses."""

    source: SourceFile
    features: FeatureSet
    callgraph: CallGraph
    modref: Dict[str, ModRefInfo] = field(default_factory=dict)
    sections: Dict[str, SectionInfo] = field(default_factory=dict)
    kills: Dict[str, KillInfo] = field(default_factory=dict)
    ip_constants: Dict[str, Dict[str, object]] = field(default_factory=dict)
    units: Dict[str, UnitAnalysis] = field(default_factory=dict)

    def unit(self, name: str) -> UnitAnalysis:
        return self.units[name.lower()]

    def parallel_loop_count(self) -> int:
        return sum(len(ua.parallel_loops()) for ua in self.units.values())

    def loop_count(self) -> int:
        return sum(len(ua.loops) for ua in self.units.values())


@dataclass
class ProgramSummaries:
    """The four interprocedural summary families, one entry per unit.

    ``kills`` holds the *full* kill summaries; feature gating (scalar vs
    array kill) is applied by :func:`kills_view` at provider-construction
    time so a cached full summary can serve any feature combination.
    """

    modref: Dict[str, ModRefInfo] = field(default_factory=dict)
    kills: Dict[str, KillInfo] = field(default_factory=dict)
    sections: Dict[str, SectionInfo] = field(default_factory=dict)
    ip_constants: Dict[str, Dict[str, object]] = field(default_factory=dict)


def compute_summaries(cg: CallGraph, features: FeatureSet) -> ProgramSummaries:
    """Run every interprocedural summary phase the feature set demands."""

    s = ProgramSummaries()
    if features.needs_modref():
        s.modref = compute_modref(cg)
    if features.needs_kills():
        s.kills = compute_kills(cg)
    if features.sections:
        s.sections = compute_sections(cg)
    if features.ip_constants:
        s.ip_constants = compute_ip_constants(cg)
    return s


def kills_view(
    kills: Dict[str, KillInfo], features: FeatureSet
) -> Dict[str, KillInfo]:
    """Feature-restricted copy of the kill summaries: the scalar half is
    dropped unless ``scalar_kill``, the array half unless ``array_kill``."""

    return {
        name: KillInfo(
            set(info.scalars) if features.scalar_kill else set(),
            set(info.arrays) if features.array_kill else set(),
        )
        for name, info in kills.items()
    }


@dataclass
class UnitProviders:
    """Callables handed to the per-unit dependence driver."""

    effects: Optional[PreciseEffects] = None
    section_provider: Optional[Callable] = None
    arrays_fn: Optional[Callable] = None


def build_providers(
    cg: CallGraph,
    features: FeatureSet,
    modref: Dict[str, ModRefInfo],
    sections: Dict[str, SectionInfo],
    kills: Dict[str, KillInfo],
) -> UnitProviders:
    """Wire the summary dictionaries into the call-site translators the
    dependence driver consumes.  ``kills`` must already be the
    feature-restricted :func:`kills_view`."""

    providers = UnitProviders()
    if features.modref:
        providers.effects = PreciseEffects(
            cg, modref, kills if features.scalar_kill else None
        )
    if features.sections:
        providers.section_provider = make_section_provider(
            cg, sections, kills if features.array_kill else None
        )

    def arrays_fn(loop, unit):
        return privatizable_arrays(
            loop, unit, cg, kills if features.array_kill else None
        )

    providers.arrays_fn = arrays_fn
    return providers


def unit_config(
    name: str,
    features: FeatureSet,
    providers: UnitProviders,
    ip_constants: Dict[str, Dict[str, object]],
    oracle: Optional[Oracle],
    shared_memo=None,
) -> AnalysisConfig:
    """The per-unit driver configuration for one procedure."""

    return AnalysisConfig(
        effects=providers.effects,
        section_provider=providers.section_provider,
        oracle=oracle,
        inherited_constants=ip_constants.get(name),
        use_constants=True,
        use_kill=features.scalar_kill,
        use_reductions=features.reductions,
        use_inductions=features.inductions,
        control_deps=features.control,
        privatizable_arrays_fn=providers.arrays_fn
        if features.array_kill
        else None,
        shared_memo=shared_memo,
    )


def analyze_program(
    sf: SourceFile,
    features: Optional[FeatureSet] = None,
    oracle: Optional[Oracle] = None,
    oracles_by_unit: Optional[Dict[str, Oracle]] = None,
) -> ProgramAnalysis:
    """Analyze a bound source file with the given feature set.

    ``oracle`` (or ``oracles_by_unit``) injects user assertions into the
    symbolic machinery; sessions re-run this after each assertion or edit.
    """

    features = features or FeatureSet()
    cg = build_callgraph(sf)
    summaries = compute_summaries(cg, features)
    kv = kills_view(summaries.kills, features)
    pa = ProgramAnalysis(
        sf,
        features,
        cg,
        modref=summaries.modref,
        sections=summaries.sections,
        kills=kv,
        ip_constants=summaries.ip_constants,
    )
    providers = build_providers(cg, features, summaries.modref, summaries.sections, kv)
    # One program-scoped memo: units repeating a subscript shape (with
    # the same oracle facts and PARAMETER slice) replay each other's
    # verdicts instead of re-running the test hierarchy.
    shared = (
        SharedPairMemo()
        if HOT_PATH.share_pairs and HOT_PATH.memoize_pairs
        else None
    )
    for name, unit in cg.units.items():
        unit_oracle = (oracles_by_unit or {}).get(name, oracle)
        config = unit_config(
            name, features, providers, summaries.ip_constants, unit_oracle,
            shared_memo=shared,
        )
        pa.units[name] = analyze_unit(unit, config)
    return pa
