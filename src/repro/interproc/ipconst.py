"""Interprocedural constant propagation.

"Interprocedural constants are inherited from a procedure's callers and
directly incorporated into its intraprocedural counterpart."  We use
literal/constant jump functions: for every call site, each actual argument
is evaluated in the caller's (already constant-folded) environment; a
formal receives a constant only when **all** call sites pass the same
constant.  Propagation runs top-down over the call graph so that constants
entering a root procedure flow transitively through the whole program.

The payoff for dependence analysis is concrete: a symbolic dimension or
loop bound (``N``) that is really constant everywhere turns symbolic
dependence tests into exact ones (Table 3's ``constants`` column).
"""

from __future__ import annotations

from typing import Dict

from ..analysis.constants import ConstantMap, eval_const, propagate_constants
from .callgraph import CallGraph

#: Sentinel for "call sites disagree".
_BOTTOM = object()


def gather_site_proposals(
    cg: CallGraph,
    const_maps: Dict[str, ConstantMap],
    targets=None,
) -> Dict[str, Dict[str, object]]:
    """Evaluate every call site's actuals into per-callee proposal slots.

    A formal's slot holds a constant while all sites agree on it and
    :data:`_BOTTOM` once any site disagrees (or passes a non-constant).
    ``targets`` restricts the callees considered (the incremental engine
    passes only the dirty region); ``const_maps`` must cover every caller
    of a considered callee.
    """

    names = cg.units.keys() if targets is None else targets
    proposals: Dict[str, Dict[str, object]] = {name: {} for name in names}
    for site in cg.sites:
        slot = proposals.get(site.callee)
        if slot is None:
            continue
        callee_unit = cg.units[site.callee]
        env = const_maps[site.caller].at(site.sid)
        for idx, formal in enumerate(callee_unit.formals):
            if idx >= len(site.args):
                continue
            fsym = callee_unit.symtab.get(formal)  # type: ignore[union-attr]
            if fsym is not None and fsym.is_array:
                continue
            value = eval_const(site.args[idx], env)
            if value is None:
                slot[formal] = _BOTTOM
            elif formal not in slot:
                slot[formal] = value
            elif slot[formal] != value:
                slot[formal] = _BOTTOM
    return proposals


def resolve_slot(slot: Dict[str, object]) -> Dict[str, object]:
    """Drop the disagreeing formals from a proposal slot."""

    return {formal: value for formal, value in slot.items() if value is not _BOTTOM}


def compute_ip_constants(
    cg: CallGraph,
    max_rounds: int = 5,
) -> Dict[str, Dict[str, object]]:
    """Constants inherited by each unit's formals from all its callers.

    Returns ``{unit_name: {formal_name: value}}``.  Iterates top-down until
    stable (bounded by ``max_rounds`` for safety on recursive programs).
    """

    inherited: Dict[str, Dict[str, object]] = {name: {} for name in cg.units}
    for _ in range(max_rounds):
        changed = False
        # Fold each caller with its current inherited constants, then
        # evaluate its outgoing actuals.
        const_maps: Dict[str, ConstantMap] = {}
        for name, unit in cg.units.items():
            const_maps[name] = propagate_constants(
                unit, inherited=inherited[name]
            )
        proposals = gather_site_proposals(cg, const_maps)
        for name in cg.units:
            if not cg.sites_of(name):
                continue  # roots inherit nothing
            new = resolve_slot(proposals[name])
            if new != inherited[name]:
                inherited[name] = new
                changed = True
        if not changed:
            break
    return inherited
