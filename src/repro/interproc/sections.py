"""Bounded regular section analysis (Havlak–Kennedy).

For every procedure we summarise the *portions* of each externally visible
array it reads and writes, as per-dimension bounded sections
``[lo : hi]`` whose bounds are affine in the procedure's formals and
COMMON scalars.  At a call site the summary translates into caller terms,
giving the dependence analyzer precise per-call array accesses instead of
"may touch everything".

This is the Table 3 "sections" lever: with it, ``DO J … CALL SMOOTH(A(1,J))``
exposes that each iteration touches only column ``J`` of ``A``, so the
loop carries no dependence through ``A`` and parallelizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.symbolic import Linear, affine, linear_of_expr
from ..fortran.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    DoLoop,
    Expr,
    If,
    IOStmt,
    Num,
    ProcedureUnit,
    Stmt,
    UnOp,
    VarRef,
)
from ..fortran.symbols import COMMON, FORMAL, SymbolTable
from .callgraph import CallGraph, CallSite
from .modref import Location, _locate, _name_at
from ..dependence.references import ArrayAccess, SectionDim

#: A dimension of a summarised access, in callee terms.
#: ("point", Linear) | ("range", lo Linear, hi Linear) | ("full",)
DimSummary = Tuple


@dataclass
class AccessRecord:
    """One summarised access to an external array inside a procedure."""

    is_write: bool
    dims: List[DimSummary]


@dataclass
class ArraySectionSummary:
    """All summarised accesses of one external array location."""

    location: Location
    rank: int
    records: List[AccessRecord] = field(default_factory=list)

    def collapse_if_large(self, limit: int = 8) -> None:
        if len(self.records) > limit:
            reads = any(not r.is_write for r in self.records)
            writes = any(r.is_write for r in self.records)
            full = [("full",)] * self.rank
            self.records = []
            if reads:
                self.records.append(AccessRecord(False, list(full)))
            if writes:
                self.records.append(AccessRecord(True, list(full)))


@dataclass
class SectionInfo:
    """Per-unit section summaries keyed by external location."""

    arrays: Dict[Location, ArraySectionSummary] = field(default_factory=dict)


def linear_to_expr(lin: Linear) -> Optional[Expr]:
    """Rebuild an AST expression from a Linear form (None if impossible)."""

    terms: List[Expr] = []
    for atom, coeff in lin.coeffs:
        if atom.startswith("@") or coeff.denominator != 1:
            return None
        c = int(coeff)
        base: Expr = VarRef(0, atom)
        if c == 1:
            terms.append(base)
        elif c == -1:
            terms.append(UnOp(0, "-", base))
        else:
            terms.append(BinOp(0, "*", Num(0, abs(c)), base))
            if c < 0:
                terms[-1] = UnOp(0, "-", terms[-1])
    if lin.const.denominator != 1:
        return None
    const = int(lin.const)
    expr: Optional[Expr] = None
    for t in terms:
        expr = t if expr is None else BinOp(0, "+", expr, t)
    if const != 0 or expr is None:
        cexpr: Expr = Num(0, abs(const)) if const >= 0 else UnOp(0, "-", Num(0, abs(const)))
        if const < 0:
            cexpr = UnOp(0, "-", Num(0, abs(const)))
        expr = cexpr if expr is None else BinOp(
            0, "+" if const >= 0 else "-", expr, Num(0, abs(const))
        )
    return expr


def compute_sections(cg: CallGraph) -> Dict[str, SectionInfo]:
    """Bottom-up section summaries for every unit."""

    out: Dict[str, SectionInfo] = {name: SectionInfo() for name in cg.units}
    for scc in cg.sccs_bottom_up():
        changed = True
        passes = 0
        while changed and passes < 10:
            changed = False
            passes += 1
            for name in scc:
                new = _unit_sections(cg.units[name], cg, out)
                if _differs(new, out[name]):
                    out[name] = new
                    changed = True
    return out


def _differs(a: SectionInfo, b: SectionInfo) -> bool:
    def key(info: SectionInfo):
        return {
            loc: [(r.is_write, tuple(map(_dim_key, r.dims))) for r in s.records]
            for loc, s in info.arrays.items()
        }

    return key(a) != key(b)


def _dim_key(dim: DimSummary):
    if dim[0] == "full":
        return ("full",)
    if dim[0] == "point":
        return ("point", dim[1])
    return ("range", dim[1], dim[2])


def _unit_sections(
    unit: ProcedureUnit,
    cg: CallGraph,
    summaries: Dict[str, SectionInfo],
) -> SectionInfo:
    table: SymbolTable = unit.symtab  # type: ignore[assignment]
    info = SectionInfo()
    sites_by_sid: Dict[int, List[CallSite]] = {}
    for site in cg.sites_in(unit.name):
        sites_by_sid.setdefault(site.sid, []).append(site)

    def record(name: str, dims: List[DimSummary], is_write: bool) -> None:
        loc = _locate(name, table)
        if loc is None:
            return  # local array: invisible outside
        sym = table.get(name)
        rank = sym.rank if sym is not None else len(dims)
        clean: List[DimSummary] = []
        for dim in dims:
            # Scrub anything whose bounds mention names invisible to
            # callers (locals, loop variables) — callers cannot interpret
            # them, so the dimension degrades to "full".
            if dim[0] == "point" and _mentions_locals(dim[1], table, ()):
                clean.append(("full",))
            elif dim[0] == "range" and (
                _mentions_locals(dim[1], table, ())
                or _mentions_locals(dim[2], table, ())
            ):
                clean.append(("full",))
            else:
                clean.append(dim)
        summary = info.arrays.setdefault(loc, ArraySectionSummary(loc, rank))
        summary.records.append(AccessRecord(is_write, clean))
        summary.collapse_if_large()

    def dims_of_ref(ref: ArrayRef, loop_stack: List[DoLoop]) -> List[DimSummary]:
        dims: List[DimSummary] = []
        loop_vars = [lp.var for lp in loop_stack]
        for sub in ref.subs:
            got = affine(sub, loop_vars, table)
            if got is None:
                dims.append(("full",))
                continue
            coeffs, rem = got
            if _mentions_locals(rem, table, loop_vars):
                dims.append(("full",))
                continue
            used = [v for v, c in coeffs.items() if c != 0]
            if not used:
                dims.append(("point", rem))
                continue
            if len(used) == 1:
                var = used[0]
                c = coeffs[var]
                loop = next(lp for lp in loop_stack if lp.var == var)
                lo_l = linear_of_expr(loop.start, table)
                hi_l = linear_of_expr(loop.end, table)
                if _mentions_locals(lo_l, table, loop_vars) or _mentions_locals(
                    hi_l, table, loop_vars
                ):
                    dims.append(("full",))
                    continue
                a = rem + lo_l.scale(c)
                b = rem + hi_l.scale(c)
                if c > 0:
                    dims.append(("range", a, b))
                else:
                    dims.append(("range", b, a))
                continue
            dims.append(("full",))
        return dims

    def visit(body: List[Stmt], loop_stack: List[DoLoop]) -> None:
        for st in body:
            if isinstance(st, Assign):
                if isinstance(st.target, ArrayRef):
                    record(
                        st.target.name, dims_of_ref(st.target, loop_stack), True
                    )
                    for sub in st.target.subs:
                        _expr_reads(sub, loop_stack)
                _expr_reads(st.expr, loop_stack)
            elif isinstance(st, DoLoop):
                _expr_reads(st.start, loop_stack)
                _expr_reads(st.end, loop_stack)
                if st.step is not None:
                    _expr_reads(st.step, loop_stack)
                visit(st.body, loop_stack + [st])
            elif isinstance(st, If):
                for cond, arm in st.arms:
                    if cond is not None:
                        _expr_reads(cond, loop_stack)
                    visit(arm, loop_stack)
            elif isinstance(st, CallStmt):
                for site in sites_by_sid.get(st.sid, ()):
                    _fold_call(site, loop_stack)
                for arg in st.args:
                    if isinstance(arg, ArrayRef):
                        for sub in arg.subs:
                            _expr_reads(sub, loop_stack)
            elif isinstance(st, IOStmt):
                for e in list(st.spec) + list(st.items):
                    if isinstance(e, ArrayRef):
                        write = st.kind == "read"
                        record(e.name, dims_of_ref(e, loop_stack), write)
                    else:
                        _expr_reads(e, loop_stack)

    def _expr_reads(expr: Expr, loop_stack: List[DoLoop]) -> None:
        from ..fortran.ast_nodes import walk_expr

        for node in walk_expr(expr):
            if isinstance(node, ArrayRef):
                record(node.name, dims_of_ref(node, loop_stack), False)

    def _fold_call(site: CallSite, loop_stack: List[DoLoop]) -> None:
        callee_info = summaries.get(site.callee)
        if callee_info is None:
            return
        callee_unit = cg.units[site.callee]
        for summary in callee_info.arrays.values():
            for name, dims_list in _translate_summary(
                summary, site, callee_unit, unit
            ):
                for is_write, dims in dims_list:
                    # Re-express loop-variant points as ranges over the
                    # current loop stack where possible.
                    out_dims: List[DimSummary] = []
                    for dim in dims:
                        out_dims.append(
                            _widen_over_loops(dim, loop_stack, table)
                        )
                    record(name, out_dims, is_write)

    visit(unit.body, [])
    return info


def _mentions_locals(lin: Linear, table: SymbolTable, loop_vars) -> bool:
    """True if the Linear mentions names not visible outside the unit."""

    for atom in lin.atoms():
        if atom.startswith("@"):
            return True
        if atom in loop_vars:
            return True
        sym = table.get(atom)
        if sym is None:
            return True
        if sym.storage not in (FORMAL, COMMON, "parameter"):
            return True
    return False


def _widen_over_loops(dim: DimSummary, loop_stack, table) -> DimSummary:
    """Turn a point that varies with an enclosing loop into a range."""

    if dim[0] != "point":
        return dim
    lin: Linear = dim[1]
    loop_vars = {lp.var for lp in loop_stack}
    varying = [a for a in lin.atoms() if a in loop_vars]
    if not varying:
        return dim
    if len(varying) > 1:
        return ("full",)
    var = varying[0]
    c = lin.coeff(var)
    if c.denominator != 1:
        return ("full",)
    loop = next(lp for lp in loop_stack if lp.var == var)
    lo_l = linear_of_expr(loop.start, table)
    hi_l = linear_of_expr(loop.end, table)
    rest = lin.drop({var})
    a = rest + lo_l.scale(c)
    b = rest + hi_l.scale(c)
    return ("range", a, b) if c > 0 else ("range", b, a)


# ---------------------------------------------------------------------------
# Call-site translation into the caller's dependence analysis
# ---------------------------------------------------------------------------


def _scalar_binding(
    callee_unit: ProcedureUnit, site: CallSite, caller: ProcedureUnit
) -> Dict[str, Linear]:
    """Map callee formal scalars to caller Linear forms where possible."""

    binding: Dict[str, Linear] = {}
    caller_table: SymbolTable = caller.symtab  # type: ignore[assignment]
    for idx, formal in enumerate(callee_unit.formals):
        if idx >= len(site.args):
            continue
        fsym = callee_unit.symtab.get(formal)  # type: ignore[union-attr]
        if fsym is None or fsym.is_array:
            continue
        binding[formal] = linear_of_expr(site.args[idx], caller_table)
    return binding


def _subst(lin: Linear, binding: Dict[str, Linear]) -> Optional[Linear]:
    out = Linear.constant(lin.const)
    for atom, coeff in lin.coeffs:
        if atom in binding:
            out = out + binding[atom].scale(coeff)
        elif atom.startswith("@"):
            return None
        else:
            out = out + Linear.atom(atom, coeff)
    return out


def _translate_summary(
    summary: ArraySectionSummary,
    site: CallSite,
    callee_unit: ProcedureUnit,
    caller: ProcedureUnit,
):
    """Yield ``(caller_array_name, [(is_write, dims)])`` for one summary."""

    caller_table: SymbolTable = caller.symtab  # type: ignore[assignment]
    binding = _scalar_binding(callee_unit, site, caller)
    loc = summary.location

    def translate_dims(record: AccessRecord) -> Optional[List[DimSummary]]:
        dims: List[DimSummary] = []
        for dim in record.dims:
            if dim[0] == "full":
                dims.append(("full",))
            elif dim[0] == "point":
                lin = _subst(dim[1], binding)
                dims.append(("point", lin) if lin is not None else ("full",))
            else:
                lo = _subst(dim[1], binding)
                hi = _subst(dim[2], binding)
                if lo is None or hi is None:
                    dims.append(("full",))
                else:
                    dims.append(("range", lo, hi))
        return dims

    if loc[0] == "formal":
        idx = loc[1]
        if idx is None or idx >= len(site.args):
            return
        arg = site.args[idx]
        if isinstance(arg, VarRef):
            sym = caller_table.get(arg.name)
            if sym is None or not sym.is_array:
                return
            if sym.rank != summary.rank:
                full = [("full",)] * sym.rank
                yield arg.name, [(r.is_write, list(full)) for r in summary.records]
                return
            yield arg.name, [
                (r.is_write, translate_dims(r)) for r in summary.records
            ]
            return
        if isinstance(arg, ArrayRef):
            sym = caller_table.get(arg.name)
            if sym is None or not sym.is_array:
                return
            # Offset pass: A(e1, …, ek) actual bound to a lower-rank formal.
            # Supported shape: formal rank r, array rank k ≥ r, with the
            # leading actual subscripts equal to the array's lower bounds
            # (offset 0); formal dims map to the leading array dims and the
            # trailing subscripts become points.
            r = summary.rank
            k = sym.rank
            if r > k:
                return
            lead_ok = True
            for d in range(r):
                lead = linear_of_expr(arg.subs[d], caller_table)
                lo_decl = sym.dims[d][0]
                lo_lin = (
                    linear_of_expr(lo_decl, caller_table)
                    if lo_decl is not None
                    else Linear.constant(1)
                )
                if (lead - lo_lin).constant_value() != 0:
                    lead_ok = False
            if not lead_ok:
                full = [("full",)] * k
                yield arg.name, [(rr.is_write, list(full)) for rr in summary.records]
                return
            out = []
            for rec in summary.records:
                dims = translate_dims(rec)
                if dims is None:
                    dims = [("full",)] * r
                for d in range(r, k):
                    dims.append(("point", linear_of_expr(arg.subs[d], caller_table)))
                out.append((rec.is_write, dims))
            yield arg.name, out
            return
        return
    if loc[0] == "common":
        site2 = CallSite(caller.name, site.callee, site.sid, site.args, site.line)
        name = _name_at(loc, site2, caller_table)
        if name is None:
            return
        sym = caller_table.get(name)
        if sym is None or not sym.is_array:
            return
        if sym.rank != summary.rank:
            full = [("full",)] * sym.rank
            yield name, [(r.is_write, list(full)) for r in summary.records]
            return
        yield name, [(r.is_write, translate_dims(r)) for r in summary.records]


def make_section_provider(
    cg: CallGraph,
    sections: Dict[str, SectionInfo],
    kills: Optional[Dict[str, object]] = None,
):
    """Build a :data:`SectionProvider` for the dependence driver.

    For each CALL it returns summarised :class:`ArrayAccess` records in
    caller terms; unknown callees return ``None`` (conservative fallback).
    With kill summaries, read records of arrays the callee kills are
    dropped: a killed array's reads are never upward exposed, so they
    cannot source cross-iteration dependences.
    """

    kills = kills or {}

    def provider(st: CallStmt, caller: ProcedureUnit) -> Optional[List[ArrayAccess]]:
        if st.name not in cg.units:
            return None
        callee_unit = cg.units[st.name]
        info = sections.get(st.name)
        if info is None:
            return None
        killed_arrays = set(getattr(kills.get(st.name), "arrays", ()) or ())
        site = CallSite(caller.name, st.name, st.sid, list(st.args), st.line)
        out: List[ArrayAccess] = []
        for summary in info.arrays.values():
            if summary.location in killed_arrays:
                # Suppress the callee's reads: killed before use.
                summary = ArraySectionSummary(
                    summary.location,
                    summary.rank,
                    [r for r in summary.records if r.is_write],
                )
            for name, recs in _translate_summary(summary, site, callee_unit, caller):
                for is_write, dims in recs:
                    sect: List[SectionDim] = []
                    ok = True
                    for dim in dims:
                        if dim[0] == "full":
                            sect.append(SectionDim(full=True))
                        elif dim[0] == "point":
                            e = linear_to_expr(dim[1])
                            if e is None:
                                sect.append(SectionDim(full=True))
                            else:
                                sect.append(SectionDim(lo=e, hi=e))
                        else:
                            lo = linear_to_expr(dim[1])
                            hi = linear_to_expr(dim[2])
                            if lo is None or hi is None:
                                sect.append(SectionDim(full=True))
                            else:
                                sect.append(SectionDim(lo=lo, hi=hi))
                    if ok:
                        out.append(
                            ArrayAccess(
                                name, st.sid, st, is_write, (), section=sect,
                                line=st.line,
                            )
                        )
        return out

    return provider


#: Public aliases: one unit's section transfer function and the structural
#: change test, for incremental re-fixpointing by the engine.
unit_sections = _unit_sections
sections_differ = _differs
