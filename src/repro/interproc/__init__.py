"""Interprocedural analysis: call graph, MOD/REF side effects, regular
sections, interprocedural constants and kill analysis."""

from .callgraph import CallGraph, CallSite, build_callgraph  # noqa: F401
from .modref import ModRefInfo, PreciseEffects, compute_modref  # noqa: F401
from .sections import (  # noqa: F401
    ArraySectionSummary,
    SectionInfo,
    compute_sections,
    make_section_provider,
)
from .ipconst import compute_ip_constants  # noqa: F401
from .ipkill import KillInfo, compute_kills, privatizable_arrays  # noqa: F401
from .program import FeatureSet, ProgramAnalysis, analyze_program  # noqa: F401
