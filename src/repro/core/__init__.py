"""Top-level façade re-exports."""

from .api import (  # noqa: F401
    analyze,
    open_session,
    parallelize_program,
    parse,
)
