"""The public API in four verbs.

>>> from repro.core import parse, analyze, open_session, parallelize_program
>>> sf = parse(source_text)                 # front end
>>> pa = analyze(source_text)               # whole-program analysis
>>> session = open_session(source_text)     # interactive Ped session
>>> result = parallelize_program(source_text)  # best-effort auto mode

``parallelize_program`` is the "automatic tool" the paper contrasts Ped
against: it applies only what analysis alone justifies (no assertions, no
markings, no user insight) — by design it leaves on the table exactly the
loops whose parallelization needed the interactive features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..editor.session import PedSession
from ..fortran.ast_nodes import SourceFile
from ..fortran.printer import to_source
from ..fortran.symbols import parse_and_bind
from ..incremental import AnalysisEngine
from ..interproc.program import FeatureSet, ProgramAnalysis
from ..transform.base import TransformContext
from ..transform.parallelize import Parallelize


def parse(source: str) -> SourceFile:
    """Parse and bind Fortran source (the front end in one call)."""

    return parse_and_bind(source)


def _service_engine(features, jobs, cache_dir) -> AnalysisEngine:
    from ..service import build_engine

    return build_engine(features=features, jobs=jobs, cache_dir=cache_dir)


def _wants_pool(jobs) -> bool:
    """Does a ``jobs`` value (int or ``"auto"``) call for worker processes?"""

    return jobs == "auto" or (isinstance(jobs, int) and jobs > 1)


def analyze(
    source: str,
    features: Optional[FeatureSet] = None,
    engine: Optional[AnalysisEngine] = None,
    jobs=1,
    cache_dir=None,
) -> ProgramAnalysis:
    """Full whole-program analysis of Fortran source text.

    Passing an :class:`AnalysisEngine` reuses its caches across calls
    (and its feature set wins); otherwise a fresh engine runs a cold
    analysis equivalent to the classic ``analyze_program`` pipeline.
    ``jobs``/``cache_dir`` configure that fresh engine with worker
    processes and/or a persistent warm-start cache.
    """

    if engine is None:
        engine = _service_engine(features, jobs, cache_dir)
    _, pa = engine.analyze(source)
    return pa


def open_session(
    source: str,
    features: Optional[FeatureSet] = None,
    engine: Optional[AnalysisEngine] = None,
    jobs=1,
    cache_dir=None,
) -> PedSession:
    """Open an interactive Ped session over the source text.

    ``jobs > 1`` (or ``"auto"``) analyzes procedures on worker
    processes; ``cache_dir`` makes reopening the same program start from
    the on-disk cache.
    """

    if engine is None and (_wants_pool(jobs) or cache_dir):
        engine = _service_engine(features, jobs, cache_dir)
    return PedSession(source, features=features, engine=engine)


@dataclass
class AutoResult:
    """Outcome of the non-interactive best-effort parallelizer."""

    source: str
    parallelized: List[Tuple[str, int]] = field(default_factory=list)
    skipped: Dict[Tuple[str, int], str] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.parallelized)


def parallelize_program(
    source: str,
    features: Optional[FeatureSet] = None,
    require_profitable: bool = True,
    engine: Optional[AnalysisEngine] = None,
    jobs=1,
    cache_dir=None,
) -> AutoResult:
    """Automatic mode: parallelize every loop the analysis alone proves
    safe (outermost-first; loops inside an already-parallel loop are left
    sequential, matching single-level parallel hardware)."""

    if engine is None and (_wants_pool(jobs) or cache_dir):
        engine = _service_engine(features, jobs, cache_dir)
    session = PedSession(source, features=features, engine=engine)
    transform = Parallelize()
    result = AutoResult(source)
    for unit_name in sorted(session.analysis.units):
        ua = session.analysis.unit(unit_name)
        covered: set = set()
        for idx, nest in enumerate(ua.loops):
            if any(id(p) in covered for p in nest.parents):
                continue
            ctx = TransformContext(ua.unit, ua)
            advice = transform.diagnose(ctx, loop=nest.loop)
            if not advice.ok or (require_profitable and not advice.profitable):
                reason = "; ".join(advice.reasons) or "unsafe"
                result.skipped[(unit_name, idx)] = reason
                continue
            transform.apply(ctx, loop=nest.loop)
            covered.add(id(nest.loop))
            result.parallelized.append((unit_name, idx))
    result.source = to_source(session.sf)
    # The transforms above mutated the session's AST in place without
    # going through session.apply, so a caller-supplied engine must not
    # keep serving the now-stale cached units.
    session.engine.invalidate()
    return result
