"""The incremental analysis engine: demand-driven, cached reanalysis.

Ped's defining property is *interactive* analysis — it reanalyzes after
every edit, assertion and transformation.  :class:`AnalysisEngine` makes
that cheap by owning the parse → interprocedural-summary → dependence
pipeline as keyed, cached stages:

* **Parse cache** — the source is split into per-unit spans
  (:mod:`repro.incremental.splitter`); each span is parsed on its own,
  padded with blank lines so statement numbering stays absolute, and the
  resulting unit is cached under the span's content digest.  An edit
  confined to one procedure reparses only that procedure.
* **Summary caches** — MOD/REF, kill and section summaries are cached
  per unit and invalidated transitively *up* the call graph (a change
  propagates to callers); interprocedural constants are invalidated
  *down* it (a change propagates to callees).  Dirty regions re-run the
  original SCC fixpoints seeded from empty summaries, with clean units
  contributing their cached values, so the result matches a from-scratch
  computation.  A recomputation that reproduces the old value does not
  bump the unit's summary revision, stopping invalidation cascades.
* **Dependence cache** — each unit's :class:`UnitAnalysis` is keyed by
  its parse revision, its assertion texts, its inherited constants and
  the summary revisions of its direct callees.  Cache hits restore the
  pristine edge markings and loop verdicts recorded at analysis time
  (sessions mutate both in place), so a hit is indistinguishable from a
  fresh analysis.

Assertion and reclassification changes therefore reanalyze without any
reparse; marking changes never touch the engine at all.  Safety valves:
a change to the program's ``{unit: kind}`` map flushes everything (name
resolution in *unchanged* units can legitimately differ when a function
appears or disappears), and :meth:`AnalysisEngine.invalidate` must be
called after in-place AST mutation (transformations), since cached units
alias the session's AST.

Known approximation: interprocedural constants iterate at most the same
five Jacobi rounds as the from-scratch pass, so on call chains deeper
than five the cached warm start can be *sharper* than a cold run; the
workload suite is well inside the bound (verified by the parity tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..assertions.engine import AssertionDB
from ..dependence.driver import UnitAnalysis, analyze_unit
from ..fortran.ast_nodes import (
    CallStmt,
    FuncRef,
    ProcedureUnit,
    SourceFile,
    Stmt,
    statement_exprs,
    walk_expr,
    walk_statements,
)
from ..fortran.parser import parse_source
from ..fortran.symbols import Binder
from ..interproc.callgraph import CallGraph, CallSite
from ..interproc.ipconst import gather_site_proposals, resolve_slot
from ..interproc.ipkill import KillInfo, unit_kills
from ..interproc.modref import ModRefInfo, local_summary
from ..interproc.program import (
    FeatureSet,
    ProgramAnalysis,
    build_providers,
    kills_view,
    unit_config,
)
from ..interproc.sections import SectionInfo, sections_differ, unit_sections
from ..analysis.constants import propagate_constants
from .splitter import UnitSpan, split_units
from .stats import EngineStats

_PHASES = ("modref", "kill", "sections", "ipconst")


@dataclass(frozen=True)
class _CallCandidate:
    """A potential call site: resolved against the current unit set at
    call-graph assembly time (the callee may not be a program unit)."""

    callee: str
    stmt: Stmt  # carrier statement (for the sid)
    call: object  # CallStmt or FuncRef (for args and line)
    is_function: bool


@dataclass
class _SpanEntry:
    """Cached parse of one source span (usually exactly one unit)."""

    digest: str
    rev: int
    units: List[ProcedureUnit]
    candidates: Optional[List[List[_CallCandidate]]] = None


@dataclass
class _DepEntry:
    """Cached per-unit dependence analysis plus its pristine mutable state."""

    key: tuple
    ua: UnitAnalysis
    markings: List[str]
    verdicts: Dict[int, Tuple[List[str], bool]]


@dataclass
class _ProgramState:
    """What the previous analyze saw — the baseline for change detection."""

    kinds: Dict[str, str]
    revs: Dict[str, int]
    callee_sets: Dict[str, tuple]
    caller_sets: Dict[str, tuple]


def _closure(seed: Set[str], edges: Dict[str, Set[str]]) -> Set[str]:
    out = set(seed)
    stack = list(seed)
    while stack:
        for nxt in edges.get(stack.pop(), ()):
            if nxt not in out:
                out.add(nxt)
                stack.append(nxt)
    return out


class AnalysisEngine:
    """Incremental replacement for ``analyze_program(parse_and_bind(...))``.

    One engine serves one feature set; sessions hold one engine for their
    whole lifetime and undo/redo simply re-present previously seen source,
    which the content-keyed caches turn into near-free restores.
    """

    SPAN_CACHE_LIMIT = 1024

    def __init__(
        self,
        features: Optional[FeatureSet] = None,
        stats: Optional[EngineStats] = None,
    ) -> None:
        self.features = features or FeatureSet()
        self.stats = stats or EngineStats()
        self._rev_counter = itertools.count(1)
        self._spans: Dict[str, _SpanEntry] = {}
        self._summaries: Dict[str, Dict[str, object]] = {p: {} for p in _PHASES}
        self._summary_revs: Dict[str, Dict[str, int]] = {p: {} for p in _PHASES}
        self._deps: Dict[str, _DepEntry] = {}
        self._last: Optional[_ProgramState] = None

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Forget every cached result (statistics are kept)."""

        self._spans.clear()
        for phase in _PHASES:
            self._summaries[phase].clear()
            self._summary_revs[phase].clear()
        self._deps.clear()
        self._last = None

    def invalidate(self) -> None:
        """Alias for :meth:`clear`; call after mutating cached ASTs in
        place (transformations), which silently desynchronizes the
        content-keyed caches."""

        self.clear()

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------

    def analyze(
        self,
        source: str,
        assertions: Optional[Dict[str, Sequence[str]]] = None,
    ) -> Tuple[SourceFile, ProgramAnalysis]:
        """(Re)analyze ``source``, reusing every cache the edit allows.

        ``assertions`` maps unit names to assertion texts (the session's
        ``assertion_texts``); they enter the per-unit dependence cache key
        so an assertion change reanalyzes only its unit — without any
        reparse.  Returns the bound source file and the program analysis,
        exactly as ``analyze_program(parse_and_bind(source), ...)`` would.
        """

        stats = self.stats
        stats.begin_analysis()
        with stats.timer("total"):
            asserts = {
                name.lower(): tuple(texts)
                for name, texts in (assertions or {}).items()
                if texts
            }
            with stats.timer("split"):
                spans = split_units(source)
            entries = self._parse_and_bind(spans)
            sf = SourceFile([u for e in entries for u in e.units])
            kinds = {u.name: u.kind for u in sf.units}
            if self._last is not None and kinds != self._last.kinds:
                # The unit set (or a unit's kind) changed: name resolution
                # inside *unchanged* units can legitimately differ (array
                # reference vs function call, intrinsic shadowing), so
                # restart from a clean slate once.
                self.clear()
                entries = self._parse_and_bind(spans)
                sf = SourceFile([u for e in entries for u in e.units])
                kinds = {u.name: u.kind for u in sf.units}
            for entry in entries:
                self._spans[entry.digest] = entry
            self._trim_span_cache(entries)

            with stats.timer("callgraph"):
                for entry in entries:
                    if entry.candidates is None:
                        entry.candidates = [
                            _collect_candidates(u) for u in entry.units
                        ]
                cg = self._assemble_callgraph(entries)

            revs = {u.name: e.rev for e in entries for u in e.units}
            changed = self._detect_changes(cg, revs)

            feats = self.features
            if feats.needs_modref():
                with stats.timer("modref"):
                    self._update_bottom_up(
                        "modref",
                        cg,
                        changed,
                        local_summary,
                        lambda a, b: a.mod == b.mod and a.ref == b.ref,
                        ModRefInfo,
                    )
            if feats.needs_kills():
                with stats.timer("kill"):
                    self._update_bottom_up(
                        "kill",
                        cg,
                        changed,
                        unit_kills,
                        lambda a, b: a.scalars == b.scalars
                        and a.arrays == b.arrays,
                        KillInfo,
                    )
            if feats.sections:
                with stats.timer("sections"):
                    self._update_bottom_up(
                        "sections",
                        cg,
                        changed,
                        unit_sections,
                        lambda a, b: not sections_differ(a, b),
                        SectionInfo,
                        max_passes=10,
                    )
            if feats.ip_constants:
                with stats.timer("ipconst"):
                    self._update_ip_constants(cg, changed)

            pa = self._run_dependence(sf, cg, asserts, revs)
            self._last = _ProgramState(
                kinds,
                revs,
                {n: tuple(sorted(cg.callees[n])) for n in cg.units},
                {n: tuple(sorted(cg.callers[n])) for n in cg.units},
            )
        return sf, pa

    # ------------------------------------------------------------------
    # stage: parse + bind
    # ------------------------------------------------------------------

    def _parse_and_bind(self, spans: List[UnitSpan]) -> List[_SpanEntry]:
        entries: List[_SpanEntry] = []
        fresh: List[_SpanEntry] = []
        with self.stats.timer("parse"):
            for span in spans:
                entry = self._spans.get(span.digest)
                if entry is not None:
                    self.stats.hit("parse")
                    entries.append(entry)
                    continue
                self.stats.miss("parse")
                padded = "\n" * (span.start_line - 1) + span.text
                sub = parse_source(padded)
                entry = _SpanEntry(
                    span.digest, next(self._rev_counter), list(sub.units)
                )
                entries.append(entry)
                fresh.append(entry)
        if fresh:
            sf = SourceFile([u for e in entries for u in e.units])
            with self.stats.timer("bind"):
                binder = Binder(sf)
                for entry in fresh:
                    for unit in entry.units:
                        binder.bind_unit(unit)
        # Fresh entries enter the span cache only in analyze(), after the
        # whole parse+bind stage succeeded: a bind error mid-way must not
        # leave half-bound units behind for the rollback reanalysis.
        return entries

    def _trim_span_cache(self, active: List[_SpanEntry]) -> None:
        if len(self._spans) <= self.SPAN_CACHE_LIMIT:
            return
        keep = {e.digest for e in active}
        for digest in list(self._spans):
            if len(self._spans) <= self.SPAN_CACHE_LIMIT:
                break
            if digest not in keep:
                del self._spans[digest]

    # ------------------------------------------------------------------
    # stage: call graph
    # ------------------------------------------------------------------

    def _assemble_callgraph(self, entries: List[_SpanEntry]) -> CallGraph:
        cg = CallGraph()
        for entry in entries:
            for unit in entry.units:
                cg.units[unit.name] = unit
                cg.callees.setdefault(unit.name, set())
                cg.callers.setdefault(unit.name, set())
        for entry in entries:
            for unit, cands in zip(entry.units, entry.candidates or ()):
                for cand in cands:
                    if cand.callee not in cg.units:
                        continue
                    cg.sites.append(
                        CallSite(
                            unit.name,
                            cand.callee,
                            cand.stmt.sid,
                            list(cand.call.args),  # type: ignore[union-attr]
                            cand.call.line,  # type: ignore[union-attr]
                            is_function=cand.is_function,
                        )
                    )
                    cg.callees[unit.name].add(cand.callee)
                    cg.callers[cand.callee].add(unit.name)
        return cg

    def _detect_changes(self, cg: CallGraph, revs: Dict[str, int]) -> Set[str]:
        prev = self._last
        current = set(cg.units)
        for phase in _PHASES:
            for stale in [n for n in self._summaries[phase] if n not in current]:
                del self._summaries[phase][stale]
                self._summary_revs[phase].pop(stale, None)
        for stale in [n for n in self._deps if n not in current]:
            del self._deps[stale]
        if prev is None:
            return current
        return {
            n
            for n in current
            if prev.revs.get(n) != revs[n]
            or prev.callee_sets.get(n) != tuple(sorted(cg.callees[n]))
            or prev.caller_sets.get(n) != tuple(sorted(cg.callers[n]))
        }

    # ------------------------------------------------------------------
    # stage: interprocedural summaries
    # ------------------------------------------------------------------

    def _update_bottom_up(
        self,
        phase: str,
        cg: CallGraph,
        changed: Set[str],
        step,
        equal,
        default,
        max_passes: Optional[int] = None,
    ) -> None:
        """Re-run one bottom-up summary fixpoint over the dirty region.

        Dirty = changed units plus their transitive callers, so every SCC
        is either entirely dirty or entirely clean; dirty units are
        re-seeded with empty summaries (matching the from-scratch seeds)
        while clean units contribute their cached values at the boundary.
        """

        cache = self._summaries[phase]
        revs = self._summary_revs[phase]
        dirty = _closure(changed, cg.callers)
        work = {n: cache.get(n, default()) for n in cg.units}
        for n in dirty:
            work[n] = default()
        for scc in cg.sccs_bottom_up():
            live = [n for n in scc if n in dirty]
            if not live:
                continue
            scc_changed = True
            passes = 0
            while scc_changed and (max_passes is None or passes < max_passes):
                scc_changed = False
                passes += 1
                for n in live:
                    new = step(cg.units[n], cg, work)
                    if not equal(new, work[n]):
                        work[n] = new
                        scc_changed = True
        for n in cg.units:
            if n in dirty:
                self.stats.miss(phase)
                if n not in cache or not equal(work[n], cache[n]):
                    revs[n] = revs.get(n, 0) + 1
                cache[n] = work[n]
            else:
                self.stats.hit(phase)

    def _update_ip_constants(self, cg: CallGraph, changed: Set[str]) -> None:
        """Top-down counterpart: constants flow caller → callee, so the
        dirty region closes over callees; clean callers contribute their
        cached (already folded) environments."""

        cache = self._summaries["ipconst"]
        revs = self._summary_revs["ipconst"]
        dirty = _closure(changed, cg.callees)
        for n in cg.units:
            if n in dirty:
                self.stats.miss("ipconst")
            else:
                self.stats.hit("ipconst")
        if not dirty:
            return
        inherited = {n: dict(cache.get(n, {})) for n in cg.units}
        for n in dirty:
            inherited[n] = {}
        targets = {n for n in dirty if cg.callers.get(n)}  # roots inherit nothing
        callers_needed = {s.caller for s in cg.sites if s.callee in targets}
        for _ in range(5):  # same Jacobi bound as compute_ip_constants
            round_changed = False
            const_maps = {
                c: propagate_constants(cg.units[c], inherited=inherited[c])
                for c in callers_needed
            }
            proposals = gather_site_proposals(cg, const_maps, targets=targets)
            for n in targets:
                new = resolve_slot(proposals[n])
                if new != inherited[n]:
                    inherited[n] = new
                    round_changed = True
            if not round_changed:
                break
        for n in cg.units:
            if n in dirty:
                if n not in cache or inherited[n] != cache[n]:
                    revs[n] = revs.get(n, 0) + 1
                cache[n] = inherited[n]

    # ------------------------------------------------------------------
    # stage: per-unit dependence analysis
    # ------------------------------------------------------------------

    def _run_dependence(
        self,
        sf: SourceFile,
        cg: CallGraph,
        asserts: Dict[str, tuple],
        revs: Dict[str, int],
    ) -> ProgramAnalysis:
        feats = self.features
        stats = self.stats
        kv = kills_view(self._summaries["kill"], feats)  # type: ignore[arg-type]
        modref = dict(self._summaries["modref"])
        sections = dict(self._summaries["sections"])
        constants = {
            n: dict(v) for n, v in self._summaries["ipconst"].items()
        }
        pa = ProgramAnalysis(
            sf,
            feats,
            cg,
            modref=modref,  # type: ignore[arg-type]
            sections=sections,  # type: ignore[arg-type]
            kills=kv,
            ip_constants=constants,
        )
        providers = build_providers(cg, feats, modref, sections, kv)  # type: ignore[arg-type]
        mr = self._summary_revs["modref"]
        kr = self._summary_revs["kill"]
        sr = self._summary_revs["sections"]
        with stats.timer("dependence"):
            for name, unit in cg.units.items():
                key = (
                    revs[name],
                    asserts.get(name, ()),
                    tuple(sorted(constants.get(name, {}).items())),
                    tuple(
                        sorted(
                            (c, mr.get(c, 0), kr.get(c, 0), sr.get(c, 0))
                            for c in cg.callees[name]
                        )
                    ),
                )
                cached = self._deps.get(name)
                if cached is not None and cached.key == key:
                    stats.hit("dependence")
                    _restore_pristine(cached)
                    pa.units[name] = cached.ua
                    continue
                stats.miss("dependence")
                oracle = None
                if asserts.get(name):
                    oracle = AssertionDB()
                    for text in asserts[name]:
                        oracle.add(text)
                config = unit_config(name, feats, providers, constants, oracle)
                ua = analyze_unit(unit, config)
                self._deps[name] = _DepEntry(
                    key,
                    ua,
                    ua.graph.marking_snapshot(),
                    {
                        sid: (list(info.obstacles), info.parallelizable)
                        for sid, info in ua.loop_info.items()
                    },
                )
                pa.units[name] = ua
        return pa


def _restore_pristine(entry: _DepEntry) -> None:
    """Undo session-side mutation (markings, verdicts) on a cached unit."""

    entry.ua.graph.restore_markings(entry.markings)
    for sid, (obstacles, parallelizable) in entry.verdicts.items():
        info = entry.ua.loop_info[sid]
        info.obstacles = list(obstacles)
        info.parallelizable = parallelizable


def _collect_candidates(unit: ProcedureUnit) -> List[_CallCandidate]:
    """Every potential call site of ``unit``, in the exact order
    ``build_callgraph`` discovers them (CALL before function refs within
    a statement); resolution against the unit set happens at assembly."""

    out: List[_CallCandidate] = []
    for st in walk_statements(unit.body):
        if isinstance(st, CallStmt):
            out.append(_CallCandidate(st.name, st, st, False))
        for top in statement_exprs(st):
            for node in walk_expr(top):
                if isinstance(node, FuncRef) and not node.intrinsic:
                    out.append(_CallCandidate(node.name, st, node, True))
    return out
