"""The incremental analysis engine: demand-driven, cached reanalysis.

Ped's defining property is *interactive* analysis — it reanalyzes after
every edit, assertion and transformation.  :class:`AnalysisEngine` makes
that cheap by owning the parse → interprocedural-summary → dependence
pipeline as keyed, cached stages:

* **Parse cache** — the source is split into per-unit spans
  (:mod:`repro.incremental.splitter`); each span is parsed on its own,
  padded with blank lines so statement numbering stays absolute, and the
  resulting unit is cached under the span's content digest.  An edit
  confined to one procedure reparses only that procedure.
* **Summary caches** — MOD/REF, kill and section summaries are cached
  per unit and invalidated transitively *up* the call graph (a change
  propagates to callers); interprocedural constants are invalidated
  *down* it (a change propagates to callees).  Dirty regions re-run the
  original SCC fixpoints seeded from empty summaries, with clean units
  contributing their cached values, so the result matches a from-scratch
  computation.  A recomputation that reproduces the old value does not
  bump the unit's summary revision, stopping invalidation cascades.
* **Dependence cache** — each unit's :class:`UnitAnalysis` is keyed by
  its parse revision, its assertion texts, its inherited constants and
  the summary revisions of its direct callees.  Cache hits restore the
  pristine edge markings and loop verdicts recorded at analysis time
  (sessions mutate both in place), so a hit is indistinguishable from a
  fresh analysis.

Assertion and reclassification changes therefore reanalyze without any
reparse; marking changes never touch the engine at all.  Safety valves:
a change to the program's ``{unit: kind}`` map flushes everything (name
resolution in *unchanged* units can legitimately differ when a function
appears or disappears), and :meth:`AnalysisEngine.invalidate` must be
called after in-place AST mutation (transformations), since cached units
alias the session's AST.

The service layer plugs in at two seams:

* **Worker pool** — span parses, same-level summary steps and per-unit
  dependence analyses are dispatched through a
  :class:`~repro.service.pool.SerialPool` (inline, the default) or a
  :class:`~repro.service.pool.WorkerPool` (processes).  Dispatch order
  and merge order are fixed, and each task is a pure function of its
  payload, so results are structurally identical either way.  A unit
  analyzed in a worker comes back as a fresh object graph; the engine
  *adopts* the worker's AST as canonical (swapping it into the span
  entry and the call graph) so the invariant that cached analyses alias
  the program's AST keeps holding.
* **Persistent store** — with a :class:`~repro.service.persist.
  PersistentStore` attached, a cold engine first tries a whole-program
  warm start (every cache restored from one content-addressed record),
  parse misses fall back to per-span disk records (validated against
  the current unit-kind map before acceptance), and every analysis
  spills its results back.  Any invalid or corrupt record degrades to
  recomputation.

Known approximation: interprocedural constants iterate at most the same
five Jacobi rounds as the from-scratch pass, so on call chains deeper
than five the cached warm start can be *sharper* than a cold run; the
workload suite is well inside the bound (verified by the parity tests).
"""

from __future__ import annotations

import hashlib
import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..dependence.driver import HOT_PATH, UnitAnalysis
from ..dependence.hierarchy import SharedPairMemo
from ..fortran.ast_nodes import (
    CallStmt,
    FuncRef,
    ProcedureUnit,
    SourceFile,
    Stmt,
    statement_exprs,
    walk_expr,
    walk_statements,
)
from ..fortran.parser import parse_source
from ..fortran.symbols import Binder
from ..interproc.callgraph import CallGraph, CallSite
from ..interproc.ipconst import gather_site_proposals, resolve_slot
from ..interproc.ipkill import KillInfo, unit_kills
from ..interproc.modref import ModRefInfo, local_summary
from ..interproc.program import (
    FeatureSet,
    ProgramAnalysis,
    kills_view,
)
from ..interproc.sections import SectionInfo, sections_differ, unit_sections
from ..analysis.constants import propagate_constants
from ..pipeline.graph import PipelineGraph
from ..pipeline.nodes import NodeResult
from ..pipeline.program import build_program_graph
from ..service.pool import SerialPool
from ..service.persist import features_digest
from .fingerprint import content_key
from .splitter import UnitSpan, split_units
from .stats import EngineStats

log = logging.getLogger(__name__)

_PHASES = ("modref", "kill", "sections", "ipconst")


@dataclass(frozen=True)
class _CallCandidate:
    """A potential call site: resolved against the current unit set at
    call-graph assembly time (the callee may not be a program unit)."""

    callee: str
    stmt: Stmt  # carrier statement (for the sid)
    call: object  # CallStmt or FuncRef (for args and line)
    is_function: bool


@dataclass
class _SpanEntry:
    """Cached parse of one source span (usually exactly one unit).

    ``pending_guard`` is set on entries restored from a disk span
    record: ``(referenced_names, function_names)`` of the program the
    record was bound under.  Name resolution consults the global unit
    set only to ask "is this name a function unit?", so the entry is
    admissible in any program — including one never seen before — that
    answers identically for every recorded name; the engine checks that
    once every span is in hand, and accepted entries have it cleared.
    """

    digest: str
    rev: int
    units: List[ProcedureUnit]
    candidates: Optional[List[List[_CallCandidate]]] = None
    pending_guard: Optional[Tuple[frozenset, frozenset]] = None


@dataclass
class _DepEntry:
    """Cached per-unit dependence analysis plus its pristine mutable state."""

    key: tuple
    ua: UnitAnalysis
    markings: List[str]
    verdicts: Dict[int, Tuple[List[str], bool]]


@dataclass
class _ProgramState:
    """What the previous analyze saw — the baseline for change detection."""

    kinds: Dict[str, str]
    revs: Dict[str, int]
    callee_sets: Dict[str, tuple]
    caller_sets: Dict[str, tuple]


@dataclass
class _Run:
    """Mutable state of one pipeline walk, threaded through the node
    runners in graph-schedule order (each runner reads what upstream
    runners produced — the in-memory mirror of the declared edges)."""

    source: str
    asserts: Dict[str, tuple]
    spans: List[UnitSpan] = field(default_factory=list)
    entries: List[_SpanEntry] = field(default_factory=list)
    sf: Optional[SourceFile] = None
    kinds: Dict[str, str] = field(default_factory=dict)
    cg: Optional[CallGraph] = None
    owners: Dict[str, Tuple[_SpanEntry, int]] = field(default_factory=dict)
    revs: Dict[str, int] = field(default_factory=dict)
    changed: Set[str] = field(default_factory=set)
    ukeys: Dict[str, Optional[str]] = field(default_factory=dict)
    warm: Dict[str, Dict[str, object]] = field(default_factory=dict)
    pa: Optional[ProgramAnalysis] = None

    def warm_for(self, phase: str) -> Dict[str, object]:
        return {
            n: vals[phase]
            for n, vals in self.warm.items()
            if phase in vals
        }


def _closure(seed: Set[str], edges: Dict[str, Set[str]]) -> Set[str]:
    out = set(seed)
    stack = list(seed)
    while stack:
        for nxt in edges.get(stack.pop(), ()):
            if nxt not in out:
                out.add(nxt)
                stack.append(nxt)
    return out


def _scc_schedule(cg: CallGraph) -> List[Tuple[List[str], bool]]:
    """Bottom-up summary schedule: ``(group, recursive)`` batches.

    Non-recursive SCCs (the overwhelmingly common case in Fortran 77)
    at the same call-graph depth cannot read each other's summaries, so
    they form one parallel batch; recursive SCCs keep their serial
    fixpoint iteration.  Batches are emitted callees-first, so by the
    time a group runs every summary it can read is final.
    """

    level_of: Dict[str, int] = {}
    level_batches: Dict[int, List[str]] = {}
    level_recursive: Dict[int, List[List[str]]] = {}
    for scc in cg.sccs_bottom_up():
        members = set(scc)
        level = 0
        for n in scc:
            for callee in cg.callees.get(n, ()):
                if callee not in members:
                    level = max(level, level_of[callee] + 1)
        for n in scc:
            level_of[n] = level
        recursive = len(scc) > 1 or scc[0] in cg.callees.get(scc[0], ())
        if recursive:
            level_recursive.setdefault(level, []).append(list(scc))
        else:
            level_batches.setdefault(level, []).append(scc[0])
    schedule: List[Tuple[List[str], bool]] = []
    for level in sorted(set(level_batches) | set(level_recursive)):
        for scc in level_recursive.get(level, ()):
            schedule.append((scc, True))
        batch = level_batches.get(level)
        if batch:
            schedule.append((batch, False))
    return schedule


def _summary_payload(
    phase: str, name: str, cg: CallGraph, work: Dict[str, object]
) -> Dict[str, object]:
    """Everything one summary step needs, cut loose from the engine."""

    callees = sorted(cg.callees.get(name, ()))
    return {
        "phase": phase,
        "unit": cg.units[name],
        "callee_units": {c: cg.units[c] for c in callees},
        "sites": cg.sites_in(name),
        "summaries": {c: work[c] for c in callees if c in work},
    }


class AnalysisEngine:
    """Incremental replacement for ``analyze_program(parse_and_bind(...))``.

    One engine serves one feature set; sessions hold one engine for their
    whole lifetime and undo/redo simply re-present previously seen source,
    which the content-keyed caches turn into near-free restores.
    """

    SPAN_CACHE_LIMIT = 1024

    def __init__(
        self,
        features: Optional[FeatureSet] = None,
        stats: Optional[EngineStats] = None,
        pool=None,
        store=None,
        shared_memo: Optional[SharedPairMemo] = None,
    ) -> None:
        self.features = features or FeatureSet()
        self.stats = stats or EngineStats()
        self._pool = pool if pool is not None else SerialPool(stats=self.stats)
        self._store = store
        self._rev_next = 1
        self._spans: Dict[str, _SpanEntry] = {}
        self._summaries: Dict[str, Dict[str, object]] = {p: {} for p in _PHASES}
        self._summary_revs: Dict[str, Dict[str, int]] = {p: {} for p in _PHASES}
        self._deps: Dict[str, _DepEntry] = {}
        self._last: Optional[_ProgramState] = None
        self._spilled_spans: Set[str] = set()
        #: Program-scoped pair-test memo: one per engine by default, or
        #: injected (the Ped server shares one across session engines).
        self._shared_memo = (
            shared_memo if shared_memo is not None else SharedPairMemo()
        )
        self._memo_loaded = False
        #: Watermark for memo-delta exchange: the keys known to be in
        #: the store's singleton record.  Local entries outside this set
        #: are the delta the next export ships.
        self._memo_disk_keys: Set[tuple] = set()
        self._spilled_usums: Set[str] = set()
        #: Optional progress listener, ``callable(phase: str, detail:
        #: dict)``, invoked at every pipeline stage boundary (and once
        #: per unit in the dependence stage).  The session server routes
        #: this to ``analysis.progress`` events for streaming clients;
        #: emission is observation-only and never alters results.
        self.progress = None
        #: The pipeline-node graph this engine executes: stage order
        #: comes from the declared edges (topological schedule), not a
        #: hard-wired chain, and every node carries a content key.
        self.graph: PipelineGraph = build_program_graph()
        #: Node content keys of the previous analysis — the baseline
        #: for node-level hit/miss accounting and entry detection.
        self._node_keys: Dict[str, str] = {}
        #: Per-node outcome of the last :meth:`analyze` (see
        #: :meth:`node_report`).
        self._last_report: List[NodeResult] = []

    @property
    def pool(self):
        return self._pool

    @property
    def store(self):
        return self._store

    @property
    def shared_memo(self) -> SharedPairMemo:
        return self._shared_memo

    def _emit_progress(self, phase: str, **detail) -> None:
        cb = self.progress
        if cb is None:
            return
        try:
            cb(phase, detail)
        except Exception:  # noqa: BLE001 — listeners never break analysis
            log.warning("progress listener failed for %r", phase, exc_info=True)

    def _store_stats(self) -> EngineStats:
        """Where shared-store counters (memo deltas, leases) accumulate:
        the store's stats when attached (the server-wide object in a
        multi-session server), else this engine's own."""

        store_stats = getattr(self._store, "stats", None)
        return store_stats if store_stats is not None else self.stats

    def _new_rev(self) -> int:
        rev = self._rev_next
        self._rev_next += 1
        return rev

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Forget every cached result (statistics are kept)."""

        self._spans.clear()
        for phase in _PHASES:
            self._summaries[phase].clear()
            self._summary_revs[phase].clear()
        self._deps.clear()
        self._last = None
        self._node_keys = {}

    def invalidate(self) -> None:
        """Alias for :meth:`clear`; call after mutating cached ASTs in
        place (transformations), which silently desynchronizes the
        content-keyed caches."""

        self.clear()

    def close(self) -> None:
        """Release the worker pool (if this engine owns processes)."""

        self._pool.close()

    def changed_units(self, old_source: str, new_source: str) -> Set[str]:
        """Names of units whose span content differs between two
        sources — the invalidation hook the session host broadcasts
        from after a mutating operation.

        Purely a span-digest diff resolved through the parse cache, so
        it costs one lexer pass per source and never parses anything;
        digests the cache no longer holds (trimmed, never seen) are
        simply not attributable and contribute no names.
        """

        old = {s.digest for s in split_units(old_source)}
        new = {s.digest for s in split_units(new_source)}
        changed: Set[str] = set()
        for digest in old.symmetric_difference(new):
            entry = self._spans.get(digest)
            if entry is not None:
                changed.update(u.name for u in entry.units)
        return changed

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------

    def analyze(
        self,
        source: str,
        assertions: Optional[Dict[str, Sequence[str]]] = None,
    ) -> Tuple[SourceFile, ProgramAnalysis]:
        """(Re)analyze ``source``, reusing every cache the edit allows.

        ``assertions`` maps unit names to assertion texts (the session's
        ``assertion_texts``); they enter the per-unit dependence cache key
        so an assertion change reanalyzes only its unit — without any
        reparse.  Returns the bound source file and the program analysis,
        exactly as ``analyze_program(parse_and_bind(source), ...)`` would.

        Execution walks :attr:`graph` in schedule order: each node's
        content key (node name over its declared inputs' keys) is
        compared with the previous analysis to decide hit vs recomputed,
        and the first recomputed node is the run's *entry* — for an
        assertion-only change that is ``dependence``, with every upstream
        node a hit (counters ``node.<name>.hit``, ``graph.entry.<node>``).
        """

        stats = self.stats
        stats.begin_analysis()
        with stats.timer("total"):
            asserts = {
                name.lower(): tuple(texts)
                for name, texts in (assertions or {}).items()
                if texts
            }
            prog_key = None
            if self._store is not None:
                prog_key = self._store.program_key(
                    self.features, source, asserts
                )
                if self._last is None:
                    self._load_program_state(prog_key)
                self._absorb_memo_deltas()
            run = _Run(source=source, asserts=asserts)
            self._walk_graph(run)
            cg = run.cg
            self._last = _ProgramState(
                run.kinds,
                run.revs,
                {n: tuple(sorted(cg.callees[n])) for n in cg.units},
                {n: tuple(sorted(cg.callers[n])) for n in cg.units},
            )
            memo = self._shared_memo
            stats.counters["memo.shared_hits"] = memo.hits
            stats.counters["memo.shared_misses"] = memo.misses
            if self._store is not None:
                self._spill_state(prog_key, run.entries, run.kinds)
                self._spill_unit_summaries(run.ukeys)
                self._export_memo_deltas()
        return run.sf, run.pa

    def _walk_graph(self, run: _Run) -> None:
        """Execute the analysis graph in schedule order.

        Every node's key digests its declared inputs' keys, so hit/miss
        falls out of pure key comparison against the previous walk; the
        runners themselves always execute — their internal fine-grained
        caches (per-span parse, per-unit summaries and dependence
        entries) make a node-level hit near-free, and running them
        unconditionally keeps results byte-identical to the classic
        chain.  Disabled nodes are skipped with a sentinel key, so a
        feature toggle shows up as a key change downstream.
        """

        stats = self.stats
        keys: Dict[str, str] = {
            "source": content_key("source", run.source),
            "assertions": content_key(
                "assertions", tuple(sorted(run.asserts.items()))
            ),
            "features": content_key(
                "features", features_digest(self.features)
            ),
        }
        runners = {
            "split": self._node_split,
            "parse": self._node_parse,
            "callgraph": self._node_callgraph,
            "modref": self._node_modref,
            "kill": self._node_kill,
            "sections": self._node_sections,
            "ipconst": self._node_ipconst,
            "dependence": self._node_dependence,
        }
        report: List[NodeResult] = []
        for name in self.graph.schedule():
            node = self.graph.nodes[name]
            if not node.is_enabled(self.features):
                keys[name] = content_key(name, "disabled")
                report.append(
                    NodeResult(name, keys[name], state="skipped")
                )
                continue
            key = node.key(tuple(keys[i] for i in node.inputs))
            # Decide hit/miss *before* running: the parse runner may
            # clear() on a unit-kind-map change, which honestly demotes
            # every later node of this walk to recomputed.
            state = (
                "hit" if self._node_keys.get(name) == key else "recomputed"
            )
            stats.bump(
                f"node.{name}.{'hit' if state == 'hit' else 'miss'}"
            )
            runners[name](run)
            keys[name] = key
            report.append(NodeResult(name, key, state=state))
        self._node_keys = {r.node: r.key for r in report}
        self._last_report = report
        entry = next(
            (r.node for r in report if r.state == "recomputed"), None
        )
        stats.bump(f"graph.entry.{entry or 'none'}")
        self._emit_progress(
            "graph",
            entry=entry,
            hits=sum(1 for r in report if r.state == "hit"),
            recomputed=sum(1 for r in report if r.state == "recomputed"),
        )

    def node_report(self) -> Dict:
        """The last analysis as node outcomes (the ``graph.last`` op):
        ``entry`` (first recomputed node, ``None`` for a pure replay)
        plus one ``{node, key, state}`` row per scheduled node."""

        entry = next(
            (
                r.node
                for r in self._last_report
                if r.state == "recomputed"
            ),
            None,
        )
        return {
            "entry": entry,
            "nodes": [r.describe() for r in self._last_report],
        }

    def plan(self, changed_inputs: Sequence[str]) -> Dict:
        """What *would* re-run if the named external inputs (or node
        outputs) changed — pure topology, no execution."""

        return {
            "entry": self.graph.entry_for(changed_inputs, self.features),
            "invalidated": sorted(
                self.graph.invalidated_by(changed_inputs, self.features)
            ),
        }

    # ------------------------------------------------------------------
    # node runners (one per graph node, in declaration order)
    # ------------------------------------------------------------------

    def _node_split(self, run: _Run) -> None:
        with self.stats.timer("split"):
            run.spans = split_units(run.source)
        self._emit_progress("split", spans=len(run.spans))

    def _node_parse(self, run: _Run) -> None:
        entries, sf, kinds = self._assemble(run.spans)
        if self._last is not None and kinds != self._last.kinds:
            # The unit set (or a unit's kind) changed: name resolution
            # inside *unchanged* units can legitimately differ (array
            # reference vs function call, intrinsic shadowing), so
            # restart from a clean slate once.
            self._emit_progress(
                "invalidated", reason="unit-kind-map-changed"
            )
            self.clear()
            entries, sf, kinds = self._assemble(run.spans)
        for entry in entries:
            self._spans[entry.digest] = entry
        self._trim_span_cache(entries)
        run.entries, run.sf, run.kinds = entries, sf, kinds

    def _node_callgraph(self, run: _Run) -> None:
        with self.stats.timer("callgraph"):
            for entry in run.entries:
                if entry.candidates is None:
                    entry.candidates = [
                        _collect_candidates(u) for u in entry.units
                    ]
            run.cg = self._assemble_callgraph(run.entries)
        self._emit_progress(
            "callgraph", units=len(run.cg.units), sites=len(run.cg.sites)
        )
        # Which span entry (and slot) owns each unit — needed to adopt
        # ASTs analyzed in worker processes back as canonical.
        run.owners = {
            u.name: (entry, i)
            for entry in run.entries
            for i, u in enumerate(entry.units)
        }
        run.revs = {
            u.name: e.rev for e in run.entries for u in e.units
        }
        run.changed = self._detect_changes(run.cg, run.revs)
        # Content keys for per-unit summary records: a cold open of a
        # never-seen program warm-starts any unit whose key (span digest
        # + callee subtree) matches a prior session's.
        if self._store is not None:
            run.ukeys = self._unit_summary_keys(run.cg, run.owners)
            if run.changed:
                run.warm = self._load_unit_summaries(
                    run.ukeys, _closure(run.changed, run.cg.callers)
                )

    def _node_modref(self, run: _Run) -> None:
        with self.stats.timer("modref"):
            self._update_bottom_up(
                "modref",
                run.cg,
                run.changed,
                local_summary,
                lambda a, b: a.mod == b.mod and a.ref == b.ref,
                ModRefInfo,
                warm=run.warm_for("modref"),
            )

    def _node_kill(self, run: _Run) -> None:
        with self.stats.timer("kill"):
            self._update_bottom_up(
                "kill",
                run.cg,
                run.changed,
                unit_kills,
                lambda a, b: a.scalars == b.scalars
                and a.arrays == b.arrays,
                KillInfo,
                warm=run.warm_for("kill"),
            )

    def _node_sections(self, run: _Run) -> None:
        with self.stats.timer("sections"):
            self._update_bottom_up(
                "sections",
                run.cg,
                run.changed,
                unit_sections,
                lambda a, b: not sections_differ(a, b),
                SectionInfo,
                max_passes=10,
                warm=run.warm_for("sections"),
            )

    def _node_ipconst(self, run: _Run) -> None:
        with self.stats.timer("ipconst"):
            self._update_ip_constants(run.cg, run.changed)

    def _node_dependence(self, run: _Run) -> None:
        pa, adopted = self._run_dependence(
            run.sf, run.cg, run.asserts, run.revs, run.owners
        )
        if adopted:
            # Units analyzed in worker processes came back as fresh
            # object graphs and were swapped into their span entries;
            # rebuild the source file so sessions and cached analyses
            # alias the same ASTs.
            run.sf = SourceFile(
                [u for e in run.entries for u in e.units]
            )
            pa.source = run.sf
        run.pa = pa

    # ------------------------------------------------------------------
    # stage: parse + bind
    # ------------------------------------------------------------------

    def _parse_and_bind(self, spans: List[UnitSpan]) -> List[_SpanEntry]:
        entries: List[Optional[_SpanEntry]] = [None] * len(spans)
        to_parse: List[int] = []
        with self.stats.timer("parse"):
            for i, span in enumerate(spans):
                entry = self._spans.get(span.digest)
                if entry is not None:
                    self.stats.hit("parse")
                    entries[i] = entry
                    continue
                self.stats.miss("parse")
                if self._store is not None:
                    record = self._store.load_span(span.digest)
                    if record is not None:
                        guard, units = record
                        entry = _SpanEntry(
                            span.digest, self._new_rev(), list(units)
                        )
                        # Admissible only if the current program agrees
                        # with the recorded binding guard on which
                        # referenced names are functions; checked by
                        # _assemble once every span is in hand.
                        entry.pending_guard = guard
                        self.stats.bump("disk.span_warm")
                        entries[i] = entry
                        continue
                to_parse.append(i)
            if to_parse:
                payloads = [
                    {
                        "start_line": spans[i].start_line,
                        "text": spans[i].text,
                    }
                    for i in to_parse
                ]
                fresh: List[_SpanEntry] = []
                for i, units in zip(
                    to_parse, self._pool.map("parse", payloads)
                ):
                    entry = _SpanEntry(
                        spans[i].digest, self._new_rev(), list(units)
                    )
                    entries[i] = entry
                    fresh.append(entry)
        self._emit_progress(
            "parse",
            parsed=len(to_parse),
            reused=len(spans) - len(to_parse),
        )
        if to_parse:
            sf = SourceFile([u for e in entries for u in e.units])
            with self.stats.timer("bind"):
                binder = Binder(sf)
                for entry in fresh:
                    for unit in entry.units:
                        binder.bind_unit(unit)
        # Fresh entries enter the span cache only in analyze(), after the
        # whole parse+bind stage succeeded: a bind error mid-way must not
        # leave half-bound units behind for the rollback reanalysis.
        return entries  # type: ignore[return-value]

    def _assemble(
        self, spans: List[UnitSpan]
    ) -> Tuple[List[_SpanEntry], SourceFile, Dict[str, str]]:
        """Parse/load every span, then vet disk-restored entries.

        A span record is only valid when the program it joins resolves
        the same referenced names to function units as the program it
        was bound under; any restored entry whose recorded guard
        disagrees with the program we actually assembled is discarded
        and reparsed fresh.
        """

        entries = self._parse_and_bind(spans)
        kinds = {u.name: u.kind for e in entries for u in e.units}
        stale = [
            i
            for i, e in enumerate(entries)
            if e.pending_guard is not None
            and not _guard_ok(e.pending_guard, kinds)
        ]
        if stale:
            log.warning(
                "discarding %d disk span record(s) bound under a "
                "different unit-kind map; reparsing",
                len(stale),
            )
            self.stats.bump("disk.span_rejected", len(stale))
            for i in stale:
                span = spans[i]
                padded = "\n" * (span.start_line - 1) + span.text
                sub = parse_source(padded)
                entries[i] = _SpanEntry(
                    span.digest, self._new_rev(), list(sub.units)
                )
            sf = SourceFile([u for e in entries for u in e.units])
            binder = Binder(sf)
            for i in stale:
                for unit in entries[i].units:
                    binder.bind_unit(unit)
            kinds = {u.name: u.kind for u in sf.units}
        for entry in entries:
            entry.pending_guard = None
        sf = SourceFile([u for e in entries for u in e.units])
        return entries, sf, kinds

    def _trim_span_cache(self, active: List[_SpanEntry]) -> None:
        if len(self._spans) <= self.SPAN_CACHE_LIMIT:
            return
        keep = {e.digest for e in active}
        for digest in list(self._spans):
            if len(self._spans) <= self.SPAN_CACHE_LIMIT:
                break
            if digest not in keep:
                del self._spans[digest]

    # ------------------------------------------------------------------
    # stage: call graph
    # ------------------------------------------------------------------

    def _assemble_callgraph(self, entries: List[_SpanEntry]) -> CallGraph:
        cg = CallGraph()
        for entry in entries:
            for unit in entry.units:
                cg.units[unit.name] = unit
                cg.callees.setdefault(unit.name, set())
                cg.callers.setdefault(unit.name, set())
        for entry in entries:
            for unit, cands in zip(entry.units, entry.candidates or ()):
                for cand in cands:
                    if cand.callee not in cg.units:
                        continue
                    cg.sites.append(
                        CallSite(
                            unit.name,
                            cand.callee,
                            cand.stmt.sid,
                            list(cand.call.args),  # type: ignore[union-attr]
                            cand.call.line,  # type: ignore[union-attr]
                            is_function=cand.is_function,
                        )
                    )
                    cg.callees[unit.name].add(cand.callee)
                    cg.callers[cand.callee].add(unit.name)
        return cg

    def _detect_changes(self, cg: CallGraph, revs: Dict[str, int]) -> Set[str]:
        prev = self._last
        current = set(cg.units)
        for phase in _PHASES:
            for stale in [n for n in self._summaries[phase] if n not in current]:
                del self._summaries[phase][stale]
                self._summary_revs[phase].pop(stale, None)
        for stale in [n for n in self._deps if n not in current]:
            del self._deps[stale]
        if prev is None:
            return current
        return {
            n
            for n in current
            if prev.revs.get(n) != revs[n]
            or prev.callee_sets.get(n) != tuple(sorted(cg.callees[n]))
            or prev.caller_sets.get(n) != tuple(sorted(cg.callers[n]))
        }

    # ------------------------------------------------------------------
    # stage: interprocedural summaries
    # ------------------------------------------------------------------

    def _update_bottom_up(
        self,
        phase: str,
        cg: CallGraph,
        changed: Set[str],
        step,
        equal,
        default,
        max_passes: Optional[int] = None,
        warm: Optional[Dict[str, object]] = None,
    ) -> None:
        """Re-run one bottom-up summary fixpoint over the dirty region.

        Dirty = changed units plus their transitive callers, so every SCC
        is either entirely dirty or entirely clean; dirty units are
        re-seeded with empty summaries (matching the from-scratch seeds)
        while clean units contribute their cached values at the boundary.

        ``warm`` maps unit names to disk-restored summary values for this
        phase: content-addressed on the unit's span plus its callee
        subtree, such a value *is* what the step function would compute,
        so warm units skip computation while keeping the dirty-unit
        rev-bump and miss accounting (cache updates stay identical).
        """

        cache = self._summaries[phase]
        revs = self._summary_revs[phase]
        dirty = _closure(changed, cg.callers)
        work = {n: cache.get(n, default()) for n in cg.units}
        for n in dirty:
            work[n] = default()
        warmed = set()
        for n, value in (warm or {}).items():
            if n in dirty:
                work[n] = value
                warmed.add(n)
        for group, recursive in _scc_schedule(cg):
            live = [n for n in group if n in dirty and n not in warmed]
            if not live:
                continue
            if not recursive:
                # Same-level, non-recursive units: their callees are
                # final and they cannot read each other's summaries, so
                # one step call per unit *is* its fixpoint — and the
                # whole batch fans out across the pool.
                payloads = [
                    _summary_payload(phase, n, cg, work) for n in live
                ]
                for n, new in zip(
                    live, self._pool.map("summary", payloads)
                ):
                    work[n] = new
                continue
            scc_changed = True
            passes = 0
            while scc_changed and (max_passes is None or passes < max_passes):
                scc_changed = False
                passes += 1
                for n in live:
                    new = step(cg.units[n], cg, work)
                    if not equal(new, work[n]):
                        work[n] = new
                        scc_changed = True
        for n in cg.units:
            if n in dirty:
                self.stats.miss(phase)
                if n not in cache or not equal(work[n], cache[n]):
                    revs[n] = revs.get(n, 0) + 1
                cache[n] = work[n]
            else:
                self.stats.hit(phase)
        self._emit_progress(phase, dirty=len(dirty), units=len(cg.units))

    def _update_ip_constants(self, cg: CallGraph, changed: Set[str]) -> None:
        """Top-down counterpart: constants flow caller → callee, so the
        dirty region closes over callees; clean callers contribute their
        cached (already folded) environments."""

        cache = self._summaries["ipconst"]
        revs = self._summary_revs["ipconst"]
        dirty = _closure(changed, cg.callees)
        for n in cg.units:
            if n in dirty:
                self.stats.miss("ipconst")
            else:
                self.stats.hit("ipconst")
        self._emit_progress(
            "ipconst", dirty=len(dirty), units=len(cg.units)
        )
        if not dirty:
            return
        inherited = {n: dict(cache.get(n, {})) for n in cg.units}
        for n in dirty:
            inherited[n] = {}
        targets = {n for n in dirty if cg.callers.get(n)}  # roots inherit nothing
        callers_needed = {s.caller for s in cg.sites if s.callee in targets}
        for _ in range(5):  # same Jacobi bound as compute_ip_constants
            round_changed = False
            const_maps = {
                c: propagate_constants(cg.units[c], inherited=inherited[c])
                for c in callers_needed
            }
            proposals = gather_site_proposals(cg, const_maps, targets=targets)
            for n in targets:
                new = resolve_slot(proposals[n])
                if new != inherited[n]:
                    inherited[n] = new
                    round_changed = True
            if not round_changed:
                break
        for n in cg.units:
            if n in dirty:
                if n not in cache or inherited[n] != cache[n]:
                    revs[n] = revs.get(n, 0) + 1
                cache[n] = inherited[n]

    # ------------------------------------------------------------------
    # stage: per-unit dependence analysis
    # ------------------------------------------------------------------

    def _run_dependence(
        self,
        sf: SourceFile,
        cg: CallGraph,
        asserts: Dict[str, tuple],
        revs: Dict[str, int],
        owners: Dict[str, Tuple[_SpanEntry, int]],
    ) -> Tuple[ProgramAnalysis, bool]:
        """Per-unit dependence analysis: cache walk plus one pooled batch.

        Misses are collected and dispatched through the pool in call-graph
        order; each task payload is self-contained, so the per-unit result
        is identical inline or in a worker.  Units that came back from a
        worker process are *adopted*: the worker's AST copy replaces the
        span entry's (and the call graph's) unit, preserving the invariant
        that cached analyses alias the canonical program AST.  Returns the
        program analysis and whether any adoption happened (the caller
        then rebuilds the source file from the span entries).
        """

        feats = self.features
        stats = self.stats
        kv = kills_view(self._summaries["kill"], feats)  # type: ignore[arg-type]
        modref = dict(self._summaries["modref"])
        sections = dict(self._summaries["sections"])
        constants = {
            n: dict(v) for n, v in self._summaries["ipconst"].items()
        }
        pa = ProgramAnalysis(
            sf,
            feats,
            cg,
            modref=modref,  # type: ignore[arg-type]
            sections=sections,  # type: ignore[arg-type]
            kills=kv,
            ip_constants=constants,
        )
        mr = self._summary_revs["modref"]
        kr = self._summary_revs["kill"]
        sr = self._summary_revs["sections"]
        adopted = False
        with stats.timer("dependence"):
            misses: List[Tuple[str, tuple]] = []
            for name in cg.units:
                key = (
                    revs[name],
                    asserts.get(name, ()),
                    tuple(sorted(constants.get(name, {}).items())),
                    tuple(
                        sorted(
                            (c, mr.get(c, 0), kr.get(c, 0), sr.get(c, 0))
                            for c in cg.callees[name]
                        )
                    ),
                )
                cached = self._deps.get(name)
                if cached is not None and cached.key == key:
                    stats.hit("dependence")
                    _restore_pristine(cached)
                    pa.units[name] = cached.ua
                    continue
                stats.miss("dependence")
                misses.append((name, key))
            if misses:
                memo = self._dep_memo()
                profile = HOT_PATH.profile_tiers
                payloads = []
                for name, _key in misses:
                    callees = sorted(cg.callees.get(name, ()))
                    payloads.append(
                        {
                            "unit": cg.units[name],
                            "profile": profile,
                            "callee_units": {
                                c: cg.units[c] for c in callees
                            },
                            "sites": cg.sites_in(name),
                            "modref": {
                                c: modref[c] for c in callees if c in modref
                            },
                            "sections": {
                                c: sections[c]
                                for c in callees
                                if c in sections
                            },
                            "kills": {
                                c: kv[c] for c in callees if c in kv
                            },
                            "constants": constants.get(name, {}),
                            "asserts": asserts.get(name, ()),
                            "features": feats,
                            "memo": memo,
                        }
                    )
                for (name, key), ua in zip(
                    misses, self._pool.map("dep", payloads)
                ):
                    self._emit_progress("dependence", unit=name)
                    # Per-tier wall time (``--profile``): the tester's
                    # timings surface as stats counters so batch-vs-
                    # scalar tier costs land in ``stats``/hotpath.json.
                    tier_s = ua.tester.tier_seconds
                    if tier_s:
                        for tier, secs in tier_s.items():
                            stats.bump(f"tier.{tier}_s", secs)
                    if ua.pair_seconds:
                        stats.bump("dep.pair_s", ua.pair_seconds)
                    if ua.build_seconds:
                        stats.bump("dep.build_s", ua.build_seconds)
                    export, ua.memo_export = ua.memo_export, None
                    if export is not None:
                        # Merge worker-proved entries (or, with the
                        # serial pool, the live memo's drained pending
                        # state) into the program-scoped memo.
                        self._shared_memo.absorb(export)
                    if ua.unit is not cg.units[name]:
                        # Worker-analyzed copy: make it the canonical AST.
                        entry, slot = owners[name]
                        entry.units[slot] = ua.unit
                        entry.candidates = None
                        cg.units[name] = ua.unit
                        adopted = True
                    self._deps[name] = _DepEntry(
                        key,
                        ua,
                        ua.graph.marking_snapshot(),
                        {
                            sid: (list(info.obstacles), info.parallelizable)
                            for sid, info in ua.loop_info.items()
                        },
                    )
                    pa.units[name] = ua
        return pa, adopted

    def _dep_memo(self) -> Optional[SharedPairMemo]:
        """The memo to ship with dependence payloads, or ``None``.

        Worker pools pickle the payload per task; once the memo grows
        past :data:`SharedPairMemo.MAX_SHIP` entries the engine ships a
        fresh empty memo instead (workers still export their fresh
        entries, so merge-back keeps working) rather than serializing
        the full table into every payload.
        """

        if not (HOT_PATH.share_pairs and HOT_PATH.memoize_pairs):
            return None
        memo = self._shared_memo
        if getattr(self._pool, "parallel", False) and (
            len(memo.entries) > SharedPairMemo.MAX_SHIP
        ):
            return SharedPairMemo()
        return memo

    # ------------------------------------------------------------------
    # stage: persistence (warm starts)
    # ------------------------------------------------------------------

    def _load_program_state(self, key: str) -> bool:
        """Try to restore the engine's entire cache state from disk.

        Only attempted on a cold engine (``_last is None``); success makes
        the following pipeline walk hit every cache.  The whole state was
        pickled in one stream, so the restored spans, summaries and
        dependence entries alias one another exactly as they did when
        spilled.  Any failure leaves the engine cold.
        """

        state = self._store.load_program(key)
        if state is None:
            return False
        try:
            spans = state["spans"]
            summaries = state["summaries"]
            summary_revs = state["summary_revs"]
            deps = state["deps"]
            last = state["last"]
            rev_next = state["rev_next"]
            if not all(p in summaries and p in summary_revs for p in _PHASES):
                raise ValueError("missing summary phase")
        except Exception as exc:  # noqa: BLE001 — stay cold on bad record
            log.warning("ignoring invalid program record (%s)", exc)
            self.stats.bump("disk.error")
            return False
        self._spans = dict(spans)
        self._summaries = {p: dict(summaries[p]) for p in _PHASES}
        self._summary_revs = {p: dict(summary_revs[p]) for p in _PHASES}
        self._deps = dict(deps)
        self._last = last
        self._rev_next = max(int(rev_next), self._rev_next)
        self._spilled_spans.update(spans)
        self.stats.bump("disk.warm_start")
        return True

    def _spill_state(
        self,
        prog_key: str,
        entries: List[_SpanEntry],
        kinds: Dict[str, str],
    ) -> None:
        """Persist this analysis: per-span records plus one program record.

        Span records warm up *partial* overlaps (an edited file reuses
        every untouched span); the program record warms up an exact reopen
        (source, features and assertions all unchanged).
        """

        for entry in entries:
            if entry.digest in self._spilled_spans:
                continue
            guard = _span_guard(entry, kinds)
            if self._store.save_span(entry.digest, guard, entry.units):
                self._spilled_spans.add(entry.digest)
        if not self._store.has_program(prog_key):
            self._store.save_program(
                prog_key,
                {
                    "spans": {e.digest: e for e in entries},
                    "summaries": self._summaries,
                    "summary_revs": self._summary_revs,
                    "deps": self._deps,
                    "last": self._last,
                    "rev_next": self._rev_next,
                },
            )

    # -- shared pair-test memo: cross-process delta exchange ------------

    def _absorb_memo_deltas(self) -> None:
        """Pull memo entries sibling processes persisted since we last
        looked — the inbound half of the delta exchange.

        Runs at the top of every analysis (record reads are atomic, so
        no lease is needed): entries in the store's singleton record but
        not yet in the live memo are absorbed through the same
        exactly-once :meth:`SharedPairMemo.absorb` path the worker-pool
        merge uses, counted as ``memo.delta_absorbed``.  Absorbing more
        verdicts can never change results — every entry is fully
        content-addressed — it only replays work a sibling already did.
        """

        first = not self._memo_loaded
        self._memo_loaded = True
        if not (HOT_PATH.share_pairs and HOT_PATH.memoize_pairs):
            return
        disk = self._store.load_memo() or {}
        memo = self._shared_memo
        fresh = {k: v for k, v in disk.items() if k not in memo.entries}
        if fresh:
            memo.absorb({"entries": fresh})
            self._store_stats().bump("memo.delta_absorbed", len(fresh))
            if first:
                self.stats.bump("disk.memo_warm")
        self._memo_disk_keys = set(disk)
        self.stats.counters["memo.persisted_entries"] = len(disk)

    def _export_memo_deltas(self) -> None:
        """Ship locally proved entries to the store — the outbound half.

        Export-since-watermark: only entries not already known to be on
        disk (:attr:`_memo_disk_keys`) are shipped.  The read-merge-
        write runs under the store's memo lease so N processes extend
        rather than overwrite each other's records; entries the
        authoritative re-read reveals are absorbed for free.  A lease
        timeout skips the export (``memo.delta_skipped``) — the delta
        stays local and ships on the next analysis.
        """

        if not (HOT_PATH.share_pairs and HOT_PATH.memoize_pairs):
            return
        memo = self._shared_memo
        snapshot = dict(memo.entries)
        delta = {
            k: v
            for k, v in snapshot.items()
            if k not in self._memo_disk_keys
        }
        if not delta:
            return
        st = self._store_stats()
        lease = self._store.memo_lease()
        if not lease.acquire(timeout=5.0):
            st.bump("memo.delta_skipped")
            return
        try:
            # Authoritative under the lease: siblings may have written
            # since our absorb pass.
            disk = self._store.load_memo() or {}
            sibling_fresh = {
                k: v for k, v in disk.items() if k not in memo.entries
            }
            if sibling_fresh:
                memo.absorb({"entries": sibling_fresh})
                st.bump("memo.delta_absorbed", len(sibling_fresh))
            merged = dict(disk)
            exported = 0
            for k, v in delta.items():
                if k not in merged:
                    if len(merged) >= SharedPairMemo.MAX_ENTRIES:
                        break
                    merged[k] = v
                    exported += 1
            if (exported or not disk) and self._store.save_memo(merged):
                st.bump("memo.delta_exported", exported)
            self._memo_disk_keys = set(merged)
            self.stats.counters["memo.persisted_entries"] = len(merged)
        finally:
            lease.release()

    # -- per-unit summary records ---------------------------------------

    def _unit_summary_keys(
        self, cg: CallGraph, owners: Dict[str, Tuple[_SpanEntry, int]]
    ) -> Dict[str, Optional[str]]:
        """Recursive content key per unit, callees-first.

        A unit's key digests the feature set, its name, its span digest
        and its (sorted) callees' keys — everything its bottom-up
        summaries are a function of.  Members of recursive SCCs get
        ``None`` (their summaries are fixpoints over the whole cycle,
        not per-unit content), and ``None`` poisons every caller above.
        """

        feats = features_digest(self.features)
        keys: Dict[str, Optional[str]] = {}
        for group, recursive in _scc_schedule(cg):
            if recursive:
                for n in group:
                    keys[n] = None
                continue
            for n in group:
                parts = [feats, n, owners[n][0].digest]
                poisoned = False
                for callee in sorted(cg.callees.get(n, ())):
                    ck = keys.get(callee)
                    if ck is None:
                        poisoned = True
                        break
                    parts.append(callee)
                    parts.append(ck)
                if poisoned:
                    keys[n] = None
                    continue
                keys[n] = hashlib.sha1(
                    "\x00".join(parts).encode()
                ).hexdigest()
        return keys

    def _load_unit_summaries(
        self,
        ukeys: Dict[str, Optional[str]],
        dirty: Set[str],
    ) -> Dict[str, Dict[str, object]]:
        """Disk-restored ``{unit: {phase: value}}`` for dirty units.

        Only units about to be recomputed are looked up; in-memory
        caches already cover the clean ones.
        """

        warm: Dict[str, Dict[str, object]] = {}
        for n in sorted(dirty):
            key = ukeys.get(n)
            if key is None:
                continue
            values = self._store.load_unit_summary(key)
            if values:
                warm[n] = values
                self.stats.bump("disk.usum_hit")
            else:
                self.stats.bump("disk.usum_miss")
        return warm

    def _spill_unit_summaries(
        self, ukeys: Dict[str, Optional[str]]
    ) -> None:
        feats = self.features
        phases = []
        if feats.needs_modref():
            phases.append("modref")
        if feats.needs_kills():
            phases.append("kill")
        if feats.sections:
            phases.append("sections")
        if not phases:
            return
        for n, key in ukeys.items():
            if key is None or key in self._spilled_usums:
                continue
            values = {
                p: self._summaries[p][n]
                for p in phases
                if n in self._summaries[p]
            }
            if len(values) != len(phases):
                continue
            self._store.save_unit_summary(key, values)
            self._spilled_usums.add(key)


def _guard_ok(
    guard: Tuple[frozenset, frozenset], kinds: Dict[str, str]
) -> bool:
    """Is a disk span record admissible under the current unit set?

    Binding consults the global program only to decide whether a
    referenced name is a function unit, so agreement on that question
    over every recorded name makes the recorded binding valid here.
    """

    names, funcs = guard
    return all(
        (kinds.get(n) == "function") == (n in funcs) for n in names
    )


def _span_guard(
    entry: _SpanEntry, kinds: Dict[str, str]
) -> Tuple[frozenset, frozenset]:
    """The binding guard recorded with a span: every name the span's
    units reference (symbol tables cover them all) plus the subset that
    are function units in the current program."""

    names = set()
    for unit in entry.units:
        names.add(unit.name)
        table = getattr(unit, "symtab", None)
        if table is not None:
            names.update(table.symbols)
    funcs = frozenset(n for n in names if kinds.get(n) == "function")
    return (frozenset(names), funcs)


def _restore_pristine(entry: _DepEntry) -> None:
    """Undo session-side mutation (markings, verdicts) on a cached unit."""

    entry.ua.graph.restore_markings(entry.markings)
    for sid, (obstacles, parallelizable) in entry.verdicts.items():
        info = entry.ua.loop_info[sid]
        info.obstacles = list(obstacles)
        info.parallelizable = parallelizable


def _collect_candidates(unit: ProcedureUnit) -> List[_CallCandidate]:
    """Every potential call site of ``unit``, in the exact order
    ``build_callgraph`` discovers them (CALL before function refs within
    a statement); resolution against the unit set happens at assembly."""

    out: List[_CallCandidate] = []
    for st in walk_statements(unit.body):
        if isinstance(st, CallStmt):
            out.append(_CallCandidate(st.name, st, st, False))
        for top in statement_exprs(st):
            for node in walk_expr(top):
                if isinstance(node, FuncRef) and not node.intrinsic:
                    out.append(_CallCandidate(node.name, st, node, True))
    return out
