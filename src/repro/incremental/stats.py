"""Engine observability: per-stage timers and cache hit/miss counters.

Every :class:`~repro.incremental.engine.AnalysisEngine` carries an
:class:`EngineStats`; each pipeline stage (split, parse, bind, callgraph,
the four interprocedural summaries, per-unit dependence analysis) records
wall-clock time plus cache hits and misses.  The M2/M3 benchmarks and the
editor's ``stats`` command read this instead of re-deriving costs from
the outside, so full-vs-incremental comparisons come from real
instrumentation.

The service layer reports through the same object via free-form
``counters``: the worker pool contributes ``pool.tasks`` /
``pool.batches`` / ``pool.busy_s`` / ``pool.wall_s`` (utilization is
derived as busy ÷ wall at render time) plus the ``pool.queue_depth``
and ``pool.workers`` gauges, the disk cache contributes ``disk.hit`` /
``disk.miss`` / ``disk.write`` / ``disk.evict`` / ``disk.error``, the
engine's warm-reuse machinery contributes ``memo.shared_hits`` /
``memo.shared_misses`` / ``memo.persisted_entries`` (shared pair-test
memo) and ``disk.span_warm`` / ``disk.usum_hit`` / ``disk.usum_miss``
(per-span and per-unit-summary warm starts), and the session server
times every protocol request as a stage named ``req.<op>``.  All
counters surface automatically in :meth:`EngineStats.snapshot` (server
metrics replies) and :meth:`EngineStats.render` (the ``stats`` CLI
command).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

#: Stage display order for :meth:`EngineStats.render`.
STAGES = (
    "split",
    "parse",
    "bind",
    "callgraph",
    "modref",
    "kill",
    "sections",
    "ipconst",
    "dependence",
    "total",
)


@dataclass
class StageStat:
    """Cumulative counters for one pipeline stage."""

    runs: int = 0
    seconds: float = 0.0
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0


@dataclass
class EngineStats:
    """Timers and cache counters for one engine, cumulative per stage.

    ``last_seconds`` holds only the most recent :meth:`begin_analysis`
    cycle so interactive tools can show the latency of the *last*
    reanalysis next to session totals.
    """

    stages: Dict[str, StageStat] = field(default_factory=dict)
    analyses: int = 0
    last_seconds: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)

    def stage(self, name: str) -> StageStat:
        st = self.stages.get(name)
        if st is None:
            st = self.stages[name] = StageStat()
        return st

    def begin_analysis(self) -> None:
        self.analyses += 1
        self.last_seconds = {}

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            st = self.stage(name)
            st.runs += 1
            st.seconds += dt
            self.last_seconds[name] = self.last_seconds.get(name, 0.0) + dt

    def hit(self, name: str, n: int = 1) -> None:
        self.stage(name).hits += n

    def miss(self, name: str, n: int = 1) -> None:
        self.stage(name).misses += n

    def bump(self, name: str, n: float = 1) -> None:
        """Increment a free-form service counter (pool/disk/server)."""

        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set a free-form gauge to its current value, tracking the high
        watermark in ``<name>.peak`` (e.g. worker-pool queue depth)."""

        self.counters[name] = value
        peak = name + ".peak"
        if value > self.counters.get(peak, 0):
            self.counters[peak] = value

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def shared_memo_hit_rate(self) -> float:
        """Fraction of shared-memo lookups that replayed a prior
        verdict (cross-unit or cross-session reuse)."""

        hits = self.counters.get("memo.shared_hits", 0)
        misses = self.counters.get("memo.shared_misses", 0)
        looked = hits + misses
        return hits / looked if looked else 0.0

    def pool_utilization(self) -> float:
        """Worker busy time over main-process wait time (≈ effective
        parallel speedup of the dispatched batches)."""

        wall = self.counters.get("pool.wall_s", 0.0)
        busy = self.counters.get("pool.busy_s", 0.0)
        return busy / wall if wall else 0.0

    def reset(self) -> None:
        self.stages.clear()
        self.analyses = 0
        self.last_seconds = {}
        self.counters.clear()

    def snapshot(self) -> Dict[str, object]:
        """Machine-readable view (for the benchmark JSON artifacts)."""

        return {
            "analyses": self.analyses,
            "last_seconds": dict(self.last_seconds),
            "counters": dict(self.counters),
            "stages": {
                name: {
                    "runs": st.runs,
                    "seconds": st.seconds,
                    "hits": st.hits,
                    "misses": st.misses,
                }
                for name, st in self.stages.items()
            },
        }

    def render(self) -> str:
        """Human-readable table for the ``stats`` command / ``--profile``."""

        rows = [f"analyses: {self.analyses}"]
        header = (
            f"{'stage':<11} {'runs':>5} {'total s':>9} {'last s':>9} "
            f"{'hits':>6} {'miss':>6} {'hit%':>6}"
        )
        rows.append(header)
        rows.append("-" * len(header))
        names = [s for s in STAGES if s in self.stages]
        names += [s for s in sorted(self.stages) if s not in STAGES]
        for name in names:
            st = self.stages[name]
            looked = st.hits + st.misses
            rate = f"{100.0 * st.hit_rate:5.1f}%" if looked else "     -"
            rows.append(
                f"{name:<11} {st.runs:>5} {st.seconds:>9.4f} "
                f"{self.last_seconds.get(name, 0.0):>9.4f} "
                f"{st.hits:>6} {st.misses:>6} {rate:>6}"
            )
        if self.counters:
            rows.append("")
            for name in sorted(self.counters):
                value = self.counters[name]
                shown = f"{value:.4f}" if name.endswith("_s") else f"{value:g}"
                rows.append(f"{name:<16} {shown:>12}")
            if "pool.wall_s" in self.counters:
                rows.append(
                    f"{'pool.utilization':<16} "
                    f"{self.pool_utilization():>11.2f}x"
                )
        return "\n".join(rows)
