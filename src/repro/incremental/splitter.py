"""Split Fortran source into per-procedure-unit spans.

The incremental engine caches parse and analysis results per procedure
unit, keyed by a content hash of the unit's *source span*.  This module
finds those spans with the lexer alone — no parsing — so splitting stays
cheap enough to run on every keystroke-level edit.

A program unit ends at a bare ``END`` statement (a statement whose token
list is exactly the name ``end``; ``enddo``/``endif`` are single tokens
and ``end do``/``end if`` carry a second token, so neither is mistaken
for a unit terminator).  Trailing comment/blank lines attach to the
preceding unit; statements after the last ``END`` form a final span so a
chunk reparse reports the same "missing END" error a full parse would.

Spans record their absolute start line; reparsing a span prepends
``start_line - 1`` newlines so every token keeps its original line
number (the lexer skips blank lines), which keeps statement lines —
and therefore dependence endpoints and marking keys — identical to a
whole-file parse.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

from ..fortran import lexer
from ..fortran.lexer import tokenize


@dataclass(frozen=True)
class UnitSpan:
    """One program unit's slice of the source text (lines are 1-based,
    inclusive); ``digest`` keys the engine's parse cache."""

    start_line: int
    end_line: int
    text: str
    digest: str


def _digest(start_line: int, text: str) -> str:
    # The start line participates: moving a unit down shifts every
    # statement's line number, which analysis results depend on.
    return hashlib.sha1(f"{start_line}\n{text}".encode()).hexdigest()


def _make_span(lines: List[str], start: int, stop: int) -> UnitSpan:
    text = "\n".join(lines[start - 1 : stop]) + "\n"
    return UnitSpan(start, stop, text, _digest(start, text))


def split_units(source: str) -> List[UnitSpan]:
    """Partition ``source`` into contiguous per-unit spans covering every
    line.  A source with no ``END`` at all becomes a single span (the
    parser will report whatever a full parse would)."""

    lines = source.splitlines()
    if not lines:
        return []
    ends: List[int] = []
    last_stmt_line = 0
    stmt: List[lexer.Token] = []
    for tok in tokenize(source):
        if tok.kind in (lexer.NEWLINE, lexer.EOF):
            if stmt:
                last_stmt_line = max(last_stmt_line, stmt[0].line)
                if (
                    len(stmt) == 1
                    and stmt[0].kind == lexer.NAME
                    and stmt[0].value == "end"
                ):
                    ends.append(stmt[0].line)
            stmt = []
        elif tok.kind != lexer.LABEL:
            stmt.append(tok)

    if not ends:
        return [_make_span(lines, 1, len(lines))]

    spans: List[UnitSpan] = []
    start = 1
    for i, end_line in enumerate(ends):
        stop = end_line
        if i == len(ends) - 1 and last_stmt_line <= end_line:
            stop = len(lines)  # trailing comments belong to the last unit
        spans.append(_make_span(lines, start, stop))
        start = stop + 1
    if last_stmt_line > ends[-1]:
        spans.append(_make_span(lines, start, len(lines)))
    return spans
