"""Structural fingerprints of analysis results.

Engine-cached results must be *bit-identical* to a from-scratch
``analyze_program`` — except for dependence edge ids, which are handed
out by a per-graph counter and carry no meaning.  These helpers project
a :class:`ProgramAnalysis` onto a comparable value that captures every
user-visible artifact (edges, vectors, markings, verdicts, privatization
and idiom results, inherited constants) while ignoring object identity.
The parity tests compare engine output against the reference pipeline
with these.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from ..dependence.driver import UnitAnalysis
from ..dependence.graph import Dependence
from ..interproc.program import ProgramAnalysis


def content_key(*parts) -> str:
    """Content-hash key over heterogeneous parts.

    The one keying primitive shared by the engine's caches and the
    pipeline-node graph: every part is rendered through ``repr`` (stable
    for the str/int/tuple mixes the callers use) and the whole sequence
    digested, so two keys are equal exactly when every part is.
    """

    h = hashlib.sha1()
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


def edge_key(dep: Dependence) -> tuple:
    """Everything about an edge except its meaningless numeric id."""

    return (
        dep.kind,
        dep.var,
        dep.src_sid,
        dep.dst_sid,
        dep.vector_str(),
        dep.level,
        dep.marking,
        dep.test,
        dep.src_line,
        dep.dst_line,
        dep.reason,
        tuple(dep.nest_sids),
    )


def unit_fingerprint(ua: UnitAnalysis) -> tuple:
    edges = tuple(sorted(edge_key(d) for d in ua.graph.edges))
    loops = tuple(
        (nest.loop.sid, nest.loop.var, nest.loop.line, nest.depth)
        for nest in ua.loops
    )
    info = tuple(
        sorted(
            (
                sid,
                tuple(li.obstacles),
                li.parallelizable,
                tuple(
                    sorted((p.name, p.needs_last_value) for p in li.privatizable)
                ),
                tuple(sorted(li.privatizable_arrays)),
                tuple(sorted(r.var for r in li.reductions)),
                tuple(sorted(iv.name for iv in li.inductions)),
                tuple(sorted(edge_key(d) for d in li.carried)),
            )
            for sid, li in ua.loop_info.items()
        )
    )
    return (ua.unit.name, edges, loops, info)


def program_fingerprint(pa: ProgramAnalysis) -> Tuple[tuple, tuple]:
    units = tuple(
        unit_fingerprint(ua) for _, ua in sorted(pa.units.items())
    )
    constants = tuple(
        (name, tuple(sorted(consts.items())))
        for name, consts in sorted(pa.ip_constants.items())
    )
    return (units, constants)


def fingerprint_digest(pa: ProgramAnalysis) -> str:
    """Wire-friendly digest of :func:`program_fingerprint`.

    The service's ``fingerprint`` op ships this instead of the nested
    tuple, so the multi-mode parity suite (serial vs streamed vs
    multi-process) can compare analyses across process boundaries with
    one short string.
    """

    return hashlib.sha1(repr(program_fingerprint(pa)).encode()).hexdigest()
