"""Incremental analysis engine.

Demand-driven, cached reanalysis across the parse → interprocedural →
dependence pipeline; see :mod:`repro.incremental.engine` for the design.
"""

from .engine import AnalysisEngine
from .fingerprint import program_fingerprint, unit_fingerprint
from .splitter import UnitSpan, split_units
from .stats import EngineStats, StageStat

__all__ = [
    "AnalysisEngine",
    "EngineStats",
    "StageStat",
    "UnitSpan",
    "program_fingerprint",
    "split_units",
    "unit_fingerprint",
]
