"""Synthetic program generator for scaling studies.

The real spec77 is 5600 lines over 67 procedures; our stand-in is a
miniature.  For the scaling benchmarks (how does analysis cost grow with
program size?) this module generates structurally spec77-like programs of
arbitrary size: ``k`` field-update routines in the gloop pattern, each
swept by a driver loop, plus initialisation and checksum code.

The generator is deterministic (seeded by its arguments), produces
programs that parse, bind, analyze and *run* in the interpreter, and
whose gloop-style driver loops all parallelize under full analysis —
so the scaling benches measure realistic, fully-exercised pipelines.
"""

from __future__ import annotations

from typing import List


def generate_program(
    n_routines: int = 10,
    n_fields: int = 2,
    grid: int = 16,
    steps: int = 2,
) -> str:
    """Generate a gloop-style program with ``n_routines`` column updates.

    Size grows linearly with ``n_routines`` and ``n_fields``; every
    routine is distinct (different stencil constants) so no deduplication
    can cheat the measurement.
    """

    if n_routines < 1 or n_fields < 1:
        raise ValueError("need at least one routine and one field")
    fields = [f"f{k}" for k in range(n_fields)]
    decl_fields = ", ".join(f"{f}({grid}, {grid})" for f in fields)

    lines: List[str] = []
    emit = lines.append

    # -- main program -----------------------------------------------------
    emit("      program scale")
    emit("      integer n, nsteps")
    emit(f"      parameter (n = {grid}, nsteps = {steps})")
    emit(f"      real {decl_fields}")
    emit("      real chksum")
    emit(f"      common /grid/ {', '.join(fields)}")
    for k, f in enumerate(fields):
        emit("      do j = 1, n")
        emit("         do i = 1, n")
        emit(f"            {f}(i, j) = 0.01 * i + 0.1 * j + {k}.0")
        emit("         end do")
        emit("      end do")
    emit("      do it = 1, nsteps")
    emit("         call driver(n)")
    emit("      end do")
    emit("      chksum = 0.0")
    for f in fields:
        emit("      do j = 1, n")
        emit("         do i = 1, n")
        emit(f"            chksum = chksum + {f}(i, j)")
        emit("         end do")
        emit("      end do")
    emit("      write (6, *) chksum")
    emit("      end")
    emit("")

    # -- driver -------------------------------------------------------------
    # Calls are grouped into separate column loops (4 per loop): dependence
    # testing is pairwise per array per loop, so keeping the per-loop
    # reference count bounded keeps whole-program analysis near-linear —
    # one giant loop with n calls would cost O(n²) pairs by construction.
    emit("      subroutine driver(m)")
    emit("      integer m")
    emit(f"      integer n")
    emit(f"      parameter (n = {grid})")
    emit(f"      real {decl_fields}")
    emit(f"      common /grid/ {', '.join(fields)}")
    for start in range(0, n_routines, 4):
        emit("      do j = 1, m")
        for r in range(start, min(start + 4, n_routines)):
            f = fields[r % n_fields]
            emit(f"         call upd{r}({f}(1, j), n)")
        emit("      end do")
    emit("      return")
    emit("      end")
    emit("")

    # -- update routines ----------------------------------------------------
    for r in range(n_routines):
        c1 = 1 + (r % 7)
        c2 = 1 + (r % 5)
        emit(f"      subroutine upd{r}(x, k)")
        emit("      integer k")
        emit("      real x(k)")
        emit("      do i = 2, k - 1")
        emit(
            f"         x(i) = x(i) + 0.0{c1} * (x(i+1) - x(i-1)) "
            f"- 0.00{c2} * x(i)"
        )
        emit("      end do")
        emit("      return")
        emit("      end")
        emit("")
    return "\n".join(lines) + "\n"
