"""The synthetic evaluation suite.

One program per row of the experiences paper's Table 1, each constructed
to embody the parallelization obstacles the paper attributes to the real
(unavailable) application.  See DESIGN.md's substitution table.
"""

from .base import SuiteProgram  # noqa: F401
from .suite import SUITE, get_program, program_names  # noqa: F401
