"""Suite registry (the reproduction's Table 1)."""

from __future__ import annotations

from typing import Dict, List

from . import (
    arc3d,
    boast,
    interior,
    nxsns,
    ocean,
    onedim,
    pneoss,
    shear,
    slab2d,
    spec77,
)
from .base import SuiteProgram

_BUILDERS = [
    spec77.build,
    pneoss.build,
    nxsns.build,
    arc3d.build,
    slab2d.build,
    onedim.build,
    boast.build,
    shear.build,
    interior.build,
    ocean.build,
]

SUITE: Dict[str, SuiteProgram] = {}
for _b in _BUILDERS:
    _p = _b()
    SUITE[_p.name] = _p


def program_names() -> List[str]:
    return list(SUITE)


def get_program(name: str) -> SuiteProgram:
    try:
        return SUITE[name.lower()]
    except KeyError:
        known = ", ".join(SUITE)
        raise KeyError(f"unknown suite program {name!r}; known: {known}") from None
