"""arc3d — implicit CFD code (stand-in).

The paper uses arc3d twice: its ``filter3d`` routine motivates advanced
interprocedural *symbolic* analysis, and "in arc3d, an array is killed
inside a procedure invoked in a loop, so interprocedural array kill
analysis is required" to privatize the scratch array and parallelize the
surrounding loop.

The stand-in's plane loop calls ``filter``, which fully rewrites the
COMMON scratch array ``wrk`` (a full sweep before any read) and then uses
it to smooth one grid column.
"""

from __future__ import annotations

from .base import SuiteProgram

_SOURCE = """      program arc3d
      integer n, m
      parameter (n = 24, m = 20)
      real grid(n, m)
      real wrk(24)
      real total
      common /scr/ wrk
      common /dom/ grid
      call fill(m)
      call filtall(m)
      total = 0.0
      do j = 1, m
         do i = 1, n
            total = total + grid(i, j)
         end do
      end do
      write (6, *) total
      end

      subroutine fill(mm)
      integer mm
      integer n, m
      parameter (n = 24, m = 20)
      real grid(n, m)
      common /dom/ grid
      do j = 1, mm
         do i = 1, n
            grid(i, j) = sin(0.1 * i) + 0.02 * j
         end do
      end do
      return
      end

      subroutine filtall(mm)
      integer mm
      integer n, m
      parameter (n = 24, m = 20)
      real grid(n, m)
      real wrk(24)
      common /dom/ grid
      common /scr/ wrk
      do j = 1, mm
         call filter(grid(1, j), n)
      end do
      return
      end

      subroutine filter(col, k)
      integer k
      real col(k)
      real wrk(24)
      common /scr/ wrk
      do i = 1, 24
         wrk(i) = 0.0
      end do
      do i = 2, k - 1
         wrk(i) = 0.25 * (col(i-1) + 2.0 * col(i) + col(i+1))
      end do
      do i = 2, k - 1
         col(i) = wrk(i)
      end do
      return
      end
"""


def build() -> SuiteProgram:
    return SuiteProgram(
        name="arc3d",
        domain="computational fluid dynamics",
        contributor="stand-in for the NASA Ames ARC3D users at the workshop",
        description=(
            "Implicit smoother: the plane loop calls filter, which kills "
            "the COMMON scratch array wrk before reading it."
        ),
        source=_SOURCE,
        needs={
            "modref": True,
            "sections": True,
            "ip_constants": False,
            "scalar_kill": False,
            "array_kill": True,
            "reductions": True,  # the checksum loop
            "symbolic": True,
        },
        script=[
            "unit filtall",
            "loops",
            "select 0",
            "deps",
            "vars",
            "advice parallelize",
            "apply parallelize",
            "loops",
        ],
        target_loops=[("filtall", 0)],
        notes=(
            "Without interprocedural array kill the wrk output/flow "
            "dependences serialize the plane loop; with it, wrk is "
            "privatizable and the loop is a DOALL."
        ),
    )
