"""pneoss — thermodynamics code (stand-in).

The real pneoss (350 lines, 5 procedures; Mary Zosel, LLNL) is a small
equation-of-state kernel.  Its key loop computes per-cell state using
scalar temporaries that are killed on every iteration — exactly the
pattern scalar kill analysis must recognise so the temporaries can be
privatized — plus an energy-total sum reduction.
"""

from __future__ import annotations

from .base import SuiteProgram

_SOURCE = """      program pneoss
      integer n
      parameter (n = 48)
      real p(n), rho(n), e(n), gam(n)
      real etot
      common /state/ p, rho, e, gam
      call init(n)
      call eos(n, etot)
      call relax(n)
      write (6, *) etot
      end

      subroutine init(m)
      integer m
      real p(48), rho(48), e(48), gam(48)
      common /state/ p, rho, e, gam
      do i = 1, m
         rho(i) = 1.0 + 0.01 * i
         e(i) = 2.0 + 0.005 * i
         gam(i) = 1.4
         p(i) = 0.0
      end do
      return
      end

      subroutine eos(m, etot)
      integer m
      real etot
      real p(48), rho(48), e(48), gam(48)
      real t1, t2, c
      common /state/ p, rho, e, gam
      etot = 0.0
      do i = 1, m
         t1 = rho(i) * e(i)
         t2 = gam(i) - 1.0
         c = t1 * t2
         p(i) = c
         etot = etot + e(i) * rho(i)
      end do
      return
      end

      subroutine relax(m)
      integer m
      real p(48), rho(48), e(48), gam(48)
      real w
      common /state/ p, rho, e, gam
      do i = 2, m
         w = 0.5 * (p(i) + p(i-1))
         e(i) = e(i) - 0.001 * w
      end do
      return
      end
"""


def build() -> SuiteProgram:
    return SuiteProgram(
        name="pneoss",
        domain="thermodynamics",
        contributor="stand-in for Mary Zosel, Lawrence Livermore National Laboratory",
        description=(
            "Equation-of-state kernel: per-cell pressure from scalar "
            "temporaries (privatizable) with an energy sum reduction."
        ),
        source=_SOURCE,
        needs={
            "modref": False,
            "sections": False,
            "ip_constants": False,
            "scalar_kill": True,
            "array_kill": False,
            "reductions": True,
            "symbolic": True,
        },
        script=[
            "unit eos",
            "loops",
            "select 0",
            "vars",
            "advice parallelize",
            "apply parallelize",
            "loops",
        ],
        target_loops=[("eos", 0), ("init", 0)],
        notes=(
            "The EOS loop carries only dependences on killed scalars "
            "(t1, t2, c) and the etot reduction; scalar kill analysis + "
            "reduction recognition make it a DOALL."
        ),
    )
