"""ocean — outer-loop parallelization study (stand-in).

Joseph Stein's study ("On outer-loop parallelization of existing,
real-life Fortran-77 programs") contributed the workshop's other
evaluation thread: real codes whose *outer* loops parallelize only after
restructuring.  The stand-in is an ocean-circulation relaxation step in
which the key column loop is split across two adjacent conformable loops
and a per-column procedure call:

* **fusion** merges the adjacent column loops (raising granularity);
* **embedding** (procedure inlining) exposes the callee's loop;
* the fused outer loop then parallelizes, each iteration owning a column.

This is the complete gloop recipe of the experiences paper — "the loops
of the called procedures were first fused before applying interchange" —
driven entirely through the editor's command language.
"""

from __future__ import annotations

from .base import SuiteProgram

_SOURCE = """      program ocean
      integer n, m
      parameter (n = 20, m = 16)
      real psi(n, m), vort(n, m)
      real total
      common /oc/ psi, vort
      call start
      call relax(m)
      total = 0.0
      do j = 1, m
         do i = 1, n
            total = total + psi(i, j)
         end do
      end do
      write (6, *) total
      end

      subroutine start
      integer n, m
      parameter (n = 20, m = 16)
      real psi(n, m), vort(n, m)
      common /oc/ psi, vort
      do j = 1, m
         do i = 1, n
            psi(i, j) = 0.1 * i - 0.05 * j
            vort(i, j) = 0.02 * i * j
         end do
      end do
      return
      end

      subroutine relax(mm)
      integer mm
      integer n, m
      parameter (n = 20, m = 16)
      real psi(n, m), vort(n, m)
      common /oc/ psi, vort
      do j = 1, mm
         call smooth(psi(1, j), n)
      end do
      do j = 1, mm
         do i = 1, n
            psi(i, j) = psi(i, j) + 0.1 * vort(i, j)
         end do
      end do
      return
      end

      subroutine smooth(x, k)
      integer k
      real x(k)
      do i = 2, k - 1
         x(i) = 0.5 * x(i) + 0.25 * (x(i-1) + x(i+1))
      end do
      return
      end
"""


def build() -> SuiteProgram:
    return SuiteProgram(
        name="ocean",
        domain="ocean circulation (outer-loop study)",
        contributor="stand-in for Joseph Stein's Syracuse study",
        description=(
            "Relaxation step split across two adjacent column loops and a "
            "per-column call; outer-loop parallelization needs embedding "
            "+ fusion."
        ),
        source=_SOURCE,
        needs={
            "modref": True,
            "sections": True,
            "ip_constants": False,
            "scalar_kill": False,
            "array_kill": False,
            "reductions": True,  # the checksum loop
            "symbolic": True,
        },
        # The full restructuring recipe: embed the call, fuse the two
        # column loops, parallelize the result.
        script=[
            "unit relax",
            "loops",
            "apply inline line=39",
            "select 0",
            "advice fuse",
            "apply fuse",
            "select 0",
            "advice parallelize",
            "apply parallelize",
            "loops",
        ],
        target_loops=[("relax", 0)],
        notes=(
            "Sections alone already parallelize each column loop, but the "
            "session's value is granularity: one fused outer loop instead "
            "of two fork/joins plus a hidden callee loop."
        ),
    )
