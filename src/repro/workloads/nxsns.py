"""nxsns — quantum mechanics code (stand-in).

The real nxsns (1400 lines, 11 procedures; John Engle, LLNL) supplied the
paper's interprocedural *scalar kill* example: "interprocedural scalar
Kill analysis reveals a scalar variable is killed in a procedure invoked
inside a loop" — without it, the COMMON scalar looks like a value carried
between iterations and the loop stays serial.

The stand-in's sweep loop calls ``phase`` for each basis state; ``phase``
writes the COMMON work scalar ``wre``/``wim`` before reading them.
"""

from __future__ import annotations

from .base import SuiteProgram

_SOURCE = """      program nxsns
      integer n
      parameter (n = 40)
      real psire(n), psiim(n), h(n)
      real wre, wim
      real norm
      common /wave/ psire, psiim, h
      common /work/ wre, wim
      call setup(n)
      call sweep(n)
      norm = 0.0
      do i = 1, n
         norm = norm + psire(i) * psire(i) + psiim(i) * psiim(i)
      end do
      write (6, *) norm
      end

      subroutine setup(m)
      integer m
      real psire(40), psiim(40), h(40)
      common /wave/ psire, psiim, h
      do i = 1, m
         psire(i) = 1.0 / i
         psiim(i) = 0.5 / i
         h(i) = 0.01 * i
      end do
      return
      end

      subroutine sweep(m)
      integer m
      real psire(40), psiim(40), h(40)
      real wre, wim
      common /wave/ psire, psiim, h
      common /work/ wre, wim
      do i = 1, m
         call phase(i)
      end do
      return
      end

      subroutine phase(i)
      integer i
      real psire(40), psiim(40), h(40)
      real wre, wim
      common /wave/ psire, psiim, h
      common /work/ wre, wim
      wre = psire(i) * (1.0 - h(i) * h(i) * 0.5)
      wim = psiim(i) + h(i) * psire(i)
      psire(i) = wre
      psiim(i) = wim
      return
      end
"""


def build() -> SuiteProgram:
    return SuiteProgram(
        name="nxsns",
        domain="quantum mechanics",
        contributor="stand-in for John Engle, Lawrence Livermore National Laboratory",
        description=(
            "Wavefunction phase sweep: a COMMON scalar pair is killed "
            "inside the procedure invoked by the key loop."
        ),
        source=_SOURCE,
        needs={
            "modref": True,
            "sections": True,
            "ip_constants": False,
            "scalar_kill": True,
            "array_kill": False,
            "reductions": True,  # the norm loop
            "symbolic": True,
        },
        script=[
            "unit sweep",
            "loops",
            "select 0",
            "deps",
            "advice parallelize",
            "apply parallelize",
            "loops",
        ],
        target_loops=[("sweep", 0)],
        notes=(
            "The sweep loop parallelizes only when interprocedural scalar "
            "kill shows wre/wim cannot carry values between iterations "
            "(and sections confine the psi accesses to element i)."
        ),
    )
