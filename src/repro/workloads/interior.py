"""interior — stencil with special boundary handling (stand-in).

The second Singh–Hennessy style obstacle: "specialized use of the
boundary elements in an array".  The interior update reads the boundary
cells ``old(1)`` and ``old(nn)`` while writing ``new(2..nn−1)``; proving
the writes never touch the boundaries needs the *value* of the symbolic
bound ``nn`` (or at least ``nn ≥ 3``), which only a user assertion
supplies — the paper's "incorporating user assertions in analysis".
"""

from __future__ import annotations

from .base import SuiteProgram

_SOURCE = """      program interior
      integer n
      parameter (n = 50)
      real a(n), b(n)
      real edge, total
      common /grid/ a, b
      call init
      call step(n)
      total = 0.0
      do i = 1, n
         total = total + b(i)
      end do
      write (6, *) total
      end

      subroutine init
      integer n
      parameter (n = 50)
      real a(n), b(n)
      common /grid/ a, b
      do i = 1, n
         a(i) = 0.1 * i
         b(i) = 0.0
      end do
      return
      end

      subroutine step(nn)
      integer nn
      integer n
      parameter (n = 50)
      real a(n), b(n)
      real edge
      common /grid/ a, b
      edge = 0.5 * (a(1) + a(nn))
      do i = 2, nn - 1
         b(i) = a(i) + 0.25 * (a(1) - 2.0 * a(i) + a(nn))
     &        + b(1) + b(nn) + edge
      end do
      b(1) = a(1) + edge
      b(nn) = a(nn) + edge
      return
      end
"""


def build() -> SuiteProgram:
    return SuiteProgram(
        name="interior",
        domain="boundary-specialized stencil",
        contributor="stand-in for the Singh–Hennessy boundary-element style",
        description=(
            "Interior sweep reading boundary cells a(1)/a(nn) under a "
            "symbolic bound; the boundary writes follow the loop."
        ),
        source=_SOURCE,
        needs={
            "modref": False,
            "sections": False,
            "ip_constants": True,
            "scalar_kill": False,
            "array_kill": False,
            "reductions": True,  # total loop
            "symbolic": True,
            "assertions": True,
        },
        script=[
            "unit step",
            "loops",
            "select 0",
            "deps",
            "advice parallelize",
            "apply parallelize",
            "loops",
        ],
        target_loops=[("step", 0)],
        notes=(
            "The write b(2..nn−1) vs the later boundary writes b(1)/b(nn) "
            "and the reads of a(1)/a(nn) resolve only when nn's value is "
            "known (interprocedural constant nn = 50, or 'assert nn == "
            "50' when constants are off)."
        ),
    )
