"""Suite program descriptor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SuiteProgram:
    """One synthetic stand-in for a Table 1 application.

    ``needs`` maps :class:`repro.interproc.program.FeatureSet` field names
    to True when the paper (and our construction) requires that analysis
    to parallelize the program's key loops — the expected Table 3 row.
    ``script`` is the Ped command sequence a user would issue to reach the
    paper-reported outcome; the scripted sessions replay it.
    """

    name: str
    domain: str
    contributor: str
    description: str
    source: str
    needs: Dict[str, bool] = field(default_factory=dict)
    script: List[str] = field(default_factory=list)
    #: (unit, loop_index) pairs that must end up parallel after the script.
    target_loops: List[tuple] = field(default_factory=list)
    notes: str = ""

    @property
    def lines(self) -> int:
        return sum(1 for line in self.source.splitlines() if line.strip())

    @property
    def procedures(self) -> int:
        count = 0
        for line in self.source.splitlines():
            stripped = line.strip().lower()
            if stripped.startswith(("program ", "subroutine ")) or "function " in stripped.split("!")[0][:40]:
                if stripped.startswith(
                    ("program ", "subroutine ", "function ", "real function",
                     "integer function", "double precision function")
                ):
                    count += 1
        return count
