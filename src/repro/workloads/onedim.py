"""onedim — particle/gather code with index arrays (stand-in).

"The index arrays entry in Table 3 demonstrates that three programs
contained index arrays in subscript expressions that prevented
parallelization."  No static analysis can see that ``map(i)`` never
repeats; the user must assert it.  The stand-in scatters particle
contributions through a permutation index array; the key loop
parallelizes only after ``assert distinct map``.
"""

from __future__ import annotations

from .base import SuiteProgram

_SOURCE = """      program onedim
      integer n
      parameter (n = 40)
      real cell(n), pmass(n)
      integer map(n)
      real total
      common /mesh/ cell, pmass, map
      call build
      call deposit
      total = 0.0
      do i = 1, n
         total = total + cell(i)
      end do
      write (6, *) total
      end

      subroutine build
      integer n
      parameter (n = 40)
      real cell(n), pmass(n)
      integer map(n)
      common /mesh/ cell, pmass, map
      do i = 1, n
         cell(i) = 0.0
         pmass(i) = 1.0 + 0.01 * i
         map(i) = n + 1 - i
      end do
      return
      end

      subroutine deposit
      integer n
      parameter (n = 40)
      real cell(n), pmass(n)
      integer map(n)
      common /mesh/ cell, pmass, map
      do i = 1, n
         cell(map(i)) = cell(map(i)) + pmass(i)
      end do
      return
      end
"""


def build() -> SuiteProgram:
    return SuiteProgram(
        name="onedim",
        domain="1-D particle-in-cell",
        contributor="stand-in for the workshop's particle-code contributors",
        description=(
            "Scatter through a permutation index array; only a user "
            "assertion that map is injective removes the dependences."
        ),
        source=_SOURCE,
        needs={
            "modref": False,
            "sections": False,
            "ip_constants": False,
            "scalar_kill": False,
            "array_kill": False,
            "reductions": True,  # the total loop
            "symbolic": True,
            "assertions": True,
        },
        script=[
            "unit deposit",
            "loops",
            "select 0",
            "deps",
            "assert distinct map",
            "deps",
            "advice parallelize",
            "apply parallelize",
            "loops",
        ],
        target_loops=[("deposit", 0)],
        notes=(
            "Before the assertion the deposit loop shows pending "
            "output/flow dependences on cell through map(i); 'assert "
            "distinct map' lets the tester look through the index array."
        ),
    )
