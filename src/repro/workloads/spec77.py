"""spec77 — weather simulation (stand-in).

The real spec77 (5600 lines, 67 procedures; Steve Poole, IBM Kingston &
Lo Hsieh, IBM Palo Alto) drove the paper's interprocedural discussion:
its driver routine *gloop* loops over grid columns calling per-column
physics routines, so parallelizing the important loops needs
interprocedural section analysis, and good granularity needs fusing the
callees' loops / interchanging across the call boundary.

The stand-in keeps that exact shape at laptop scale: a time loop calls
``gloop``, which sweeps columns invoking several per-column update
routines (advection, diffusion, filtering per field), each an internal
``DO`` over one column.  The key loop is gloop's column loop: serial
under conservative call handling, parallel once MOD/REF + sections prove
each iteration touches only its own column.
"""

from __future__ import annotations

from .base import SuiteProgram

_FIELDS = ["u", "v", "t", "q"]
_STAGES = [
    ("advec", "x(i) = x(i) + 0.25 * (x(i+1) - x(i-1))", 2, "k - 1"),
    ("diffu", "x(i) = x(i) + 0.1 * (x(i+1) - 2.0 * x(i) + x(i-1))", 2, "k - 1"),
    ("decay", "x(i) = x(i) * 0.995", 1, "k"),
]


def _column_routines() -> str:
    """One routine per (stage, field): spec77's many similar procedures."""

    out = []
    for stage, update, lo, hi in _STAGES:
        for f in _FIELDS:
            name = f"{stage}{f}"
            out.append(
                f"""      subroutine {name}(x, k)
      integer k
      real x(k)
      do i = {lo}, {hi}
         {update}
      end do
      return
      end
"""
            )
    return "\n".join(out)


def _gloop() -> str:
    calls = []
    for stage, _, _, _ in _STAGES:
        for f in _FIELDS:
            calls.append(f"         call {stage}{f}({f}(1, j), n)")
    body = "\n".join(calls)
    return f"""      subroutine gloop(m)
      integer m
      integer n, mm
      parameter (n = 24, mm = 16)
      real u(n, mm), v(n, mm), t(n, mm), q(n, mm)
      common /fields/ u, v, t, q
      do j = 1, m
{body}
      end do
      return
      end
"""


def _phys() -> str:
    """Column physics: scalar temporaries killed every iteration (the
    scalar-privatization pattern) plus a guarded update."""

    return """      subroutine phys(m)
      integer m
      integer n, mm
      parameter (n = 24, mm = 16)
      real u(n, mm), v(n, mm), t(n, mm), q(n, mm)
      real ekin, cond
      common /fields/ u, v, t, q
      do j = 1, m
         do i = 1, n
            ekin = 0.5 * (u(i, j) * u(i, j) + v(i, j) * v(i, j))
            cond = q(i, j) - 0.01 * ekin
            if (cond .gt. 0.0) then
               t(i, j) = t(i, j) + 0.1 * cond
               q(i, j) = q(i, j) - 0.1 * cond
            end if
         end do
      end do
      return
      end
"""


def _diag() -> str:
    """Diagnostics: the sum/max reductions every weather code prints."""

    return """      subroutine diag(etot, qmax)
      real etot, qmax
      integer n, mm
      parameter (n = 24, mm = 16)
      real u(n, mm), v(n, mm), t(n, mm), q(n, mm)
      common /fields/ u, v, t, q
      etot = 0.0
      qmax = 0.0
      do j = 1, mm
         do i = 1, n
            etot = etot + u(i, j) * u(i, j) + v(i, j) * v(i, j)
            if (q(i, j) .gt. qmax) qmax = q(i, j)
         end do
      end do
      return
      end
"""


def _main() -> str:
    inits = []
    for k, f in enumerate(_FIELDS):
        inits.append(
            f"""      do j = 1, mm
         do i = 1, n
            {f}(i, j) = 0.01 * i + 0.1 * j + {k}.0
         end do
      end do"""
        )
    init_text = "\n".join(inits)
    sums = "\n".join(
        f"""      do j = 1, mm
         do i = 1, n
            chksum = chksum + {f}(i, j)
         end do
      end do"""
        for f in _FIELDS
    )
    return f"""      program spec77
      integer n, mm, nsteps
      parameter (n = 24, mm = 16, nsteps = 3)
      real u(n, mm), v(n, mm), t(n, mm), q(n, mm)
      real chksum, etot, qmax
      common /fields/ u, v, t, q
{init_text}
      do it = 1, nsteps
         call gloop(mm)
         call phys(mm)
      end do
      call diag(etot, qmax)
      chksum = 0.0
{sums}
      write (6, *) chksum, etot, qmax
      end
"""


def build() -> SuiteProgram:
    source = (
        _main() + "\n" + _gloop() + "\n" + _phys() + "\n" + _diag() + "\n"
        + _column_routines()
    )
    return SuiteProgram(
        name="spec77",
        domain="weather simulation",
        contributor="stand-in for Steve Poole (IBM Kingston) & Lo Hsieh (IBM Palo Alto)",
        description=(
            "Spectral weather model skeleton: a time loop drives gloop "
            "(per-column dynamics via calls), column physics with scalar "
            "temporaries, and a reductions diagnostic."
        ),
        source=source,
        needs={
            "modref": True,
            "sections": True,
            "ip_constants": False,
            "scalar_kill": True,  # phys temporaries
            "array_kill": False,
            "reductions": True,  # diag + checksum loops
            "symbolic": True,
        },
        script=[
            "unit gloop",
            "loops",
            "select 0",
            "deps",
            "advice parallelize",
            "apply parallelize",
            "unit phys",
            "select 0",
            "vars",
            "apply parallelize",
            "unit diag",
            "select 0",
            "apply reduction",
            "apply parallelize",
            "loops",
        ],
        target_loops=[("gloop", 0), ("phys", 0), ("diag", 0)],
        notes=(
            "The column loop in gloop parallelizes only when regular "
            "section analysis proves each call touches a single column; "
            "fusion of the callees' loops then raises granularity."
        ),
    )
