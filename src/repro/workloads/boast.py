"""boast — reservoir simulation diagnostics (stand-in).

"Five of the programs contain sum reductions which go unrecognized by
Ped."  The stand-in's diagnostic pass computes a material-balance sum, a
squared-residual sum and a guarded maximum over the pressure field — the
three reduction flavours the recognizer must handle before the loops
parallelize.
"""

from __future__ import annotations

from .base import SuiteProgram

_SOURCE = """      program boast
      integer n
      parameter (n = 60)
      real pres(n), sat(n)
      real balsum, resid, pmax
      common /fld/ pres, sat
      call start
      call diagno(balsum, resid, pmax)
      write (6, *) balsum, resid, pmax
      end

      subroutine start
      integer n
      parameter (n = 60)
      real pres(n), sat(n)
      common /fld/ pres, sat
      do i = 1, n
         pres(i) = 100.0 + 3.0 * i - 0.04 * i * i
         sat(i) = 0.3 + 0.005 * i
      end do
      return
      end

      subroutine diagno(balsum, resid, pmax)
      real balsum, resid, pmax
      integer n
      parameter (n = 60)
      real pres(n), sat(n)
      real r
      common /fld/ pres, sat
      balsum = 0.0
      resid = 0.0
      pmax = 0.0
      do i = 1, n
         balsum = balsum + sat(i)
         r = pres(i) - 100.0
         resid = resid + r * r
         if (pres(i) .gt. pmax) pmax = pres(i)
      end do
      return
      end
"""


def build() -> SuiteProgram:
    return SuiteProgram(
        name="boast",
        domain="petroleum reservoir simulation",
        contributor="stand-in for the BOAST contributors",
        description=(
            "Diagnostics sweep with sum, sum-of-squares and guarded-max "
            "reductions plus a killed scalar temporary."
        ),
        source=_SOURCE,
        needs={
            "modref": False,
            "sections": False,
            "ip_constants": False,
            "scalar_kill": True,  # the temporary r
            "array_kill": False,
            "reductions": True,
            "symbolic": True,
        },
        script=[
            "unit diagno",
            "loops",
            "select 0",
            "vars",
            "advice reduction",
            "apply reduction",
            "apply parallelize",
            "loops",
        ],
        target_loops=[("diagno", 0)],
        notes=(
            "All three recurrences (balsum, resid, pmax) are reductions; "
            "r is a killed scalar.  With recognition on, the loop is a "
            "DOALL; with it off, every recurrence blocks."
        ),
    )
