"""slab2d — 2-D slab decomposition code (stand-in).

"To perform array privatization in slab2d, kill analysis must be combined
with loop transformations."  The stand-in's row loop builds a local work
row (full sweep — killed), then consumes it; the same loop also
accumulates a diagnostic sum.  Parallelizing it takes array kill analysis
(privatize ``row``) *and* the reduction rewrite (the diagnostic) — the
combination the paper describes.
"""

from __future__ import annotations

from .base import SuiteProgram

_SOURCE = """      program slab2d
      integer n, m
      parameter (n = 32, m = 24)
      real slab(n, m)
      real diag
      common /dom/ slab, diag
      call fill
      call update
      write (6, *) diag
      end

      subroutine fill
      integer n, m
      parameter (n = 32, m = 24)
      real slab(n, m)
      real diag
      common /dom/ slab, diag
      do j = 1, m
         do i = 1, n
            slab(i, j) = 0.05 * i - 0.02 * j
         end do
      end do
      diag = 0.0
      return
      end

      subroutine update
      integer n, m
      parameter (n = 32, m = 24)
      real slab(n, m)
      real diag
      real row(32)
      common /dom/ slab, diag
      do j = 1, m
         do i = 1, n
            row(i) = slab(i, j) * slab(i, j)
         end do
         do i = 2, n
            slab(i, j) = slab(i, j) + 0.5 * (row(i) - row(i-1))
         end do
         diag = diag + row(n)
      end do
      return
      end
"""


def build() -> SuiteProgram:
    return SuiteProgram(
        name="slab2d",
        domain="2-D slab hydrodynamics",
        contributor="stand-in for the LLNL slab2d contributor",
        description=(
            "Row update with a local scratch row: killed each iteration of "
            "the outer loop, plus a diagnostic sum reduction."
        ),
        source=_SOURCE,
        needs={
            "modref": False,
            "sections": False,
            "ip_constants": False,
            "scalar_kill": True,
            "array_kill": True,
            "reductions": True,
            "symbolic": True,
        },
        script=[
            "unit update",
            "loops",
            "select 0",
            "vars",
            "advice privatize var=row",
            "apply privatize var=row",
            "advice parallelize",
            "apply parallelize",
            "loops",
        ],
        target_loops=[("update", 0)],
        notes=(
            "row is fully overwritten before its reads every j iteration "
            "(local array kill); diag is a sum reduction.  Both discounts "
            "are needed before the outer loop parallelizes."
        ),
    )
