"""shear — shear-flow kernel with linearized arrays (stand-in).

Singh and Hennessy "observe that certain programming styles interfere
with compiler analysis.  These include linearized arrays…".  The
stand-in's update kernel addresses a logically 2-D field through a 1-D
array with the classic ``(j-1)*ld + i`` linearization, where the leading
dimension arrives as a procedure argument.  Disproving cross-column
dependences then needs the *interprocedural constant* for ``ld`` (making
the MIV subscript testable by Banerjee) — Table 3's ``constants`` lever.
"""

from __future__ import annotations

from .base import SuiteProgram

_SOURCE = """      program shear
      integer n, m
      parameter (n = 24, m = 18)
      real field(432)
      real total
      common /lin/ field
      call seed(n, m)
      call stir(n, m, n)
      total = 0.0
      do k = 1, n * m
         total = total + field(k)
      end do
      write (6, *) total
      end

      subroutine seed(nn, mm)
      integer nn, mm
      real field(432)
      common /lin/ field
      do k = 1, nn * mm
         field(k) = 0.001 * k
      end do
      return
      end

      subroutine stir(nn, mm, ld)
      integer nn, mm, ld
      real field(432)
      common /lin/ field
      do j = 1, mm
         do i = 2, nn
            field((j-1)*ld + i) = field((j-1)*ld + i)
     &                          + 0.3 * field((j-1)*ld + i - 1)
         end do
      end do
      return
      end
"""


def build() -> SuiteProgram:
    return SuiteProgram(
        name="shear",
        domain="shear-flow kernel",
        contributor="stand-in for the Singh–Hennessy linearized-array style",
        description=(
            "Column-recurrence over a linearized 2-D array whose leading "
            "dimension is a formal parameter."
        ),
        source=_SOURCE,
        needs={
            "modref": False,
            "sections": False,
            "ip_constants": True,
            "scalar_kill": False,
            "array_kill": False,
            "reductions": True,  # the total loop
            "symbolic": True,
        },
        script=[
            "unit stir",
            "loops",
            "select 0",
            "deps",
            "advice parallelize",
            "apply parallelize",
            "loops",
        ],
        target_loops=[("stir", 0)],
        notes=(
            "The j loop carries no dependence because columns are "
            "disjoint, but proving it requires ld's value: (j−j')·ld "
            "dominates (i−i') only when ld ≥ nn is known — supplied by "
            "interprocedural constants (ld = nn = 24 at the only call)."
        ),
    )
