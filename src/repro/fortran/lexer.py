"""Tokenizer for the Fortran 77 subset understood by the reproduction.

The ParaScope Editor worked on fixed-form Fortran 77.  This lexer accepts
both classic fixed form (comment character in column 1, labels in columns
1-5, continuation mark in column 6) and a relaxed free form (``!`` comments,
trailing ``&`` continuations) so that tests and examples can be written
naturally.  The output is a flat token stream with line/column positions;
statement boundaries are represented by explicit ``NEWLINE`` tokens and an
optional leading ``LABEL`` token per statement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .errors import LexError

# Token kinds ---------------------------------------------------------------

NAME = "NAME"
INT = "INT"
REAL = "REAL"
STRING = "STRING"
OP = "OP"
LABEL = "LABEL"  # numeric statement label in the label field
NEWLINE = "NEWLINE"
EOF = "EOF"

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = [
    "**",
    "//",
    "==",
    "/=",
    "<=",
    ">=",
]

_SINGLE_OPS = set("+-*/(),=<>:$")

#: Dotted operators of Fortran 77 (``X .LT. Y``) mapped to canonical
#: symbolic spellings used throughout the analyses.
_DOT_OPS = {
    ".lt.": "<",
    ".le.": "<=",
    ".gt.": ">",
    ".ge.": ">=",
    ".eq.": "==",
    ".ne.": "/=",
    ".and.": ".and.",
    ".or.": ".or.",
    ".not.": ".not.",
    ".eqv.": ".eqv.",
    ".neqv.": ".neqv.",
    ".true.": ".true.",
    ".false.": ".false.",
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of the module-level kind constants; ``value`` is the
    canonical text (names are lower-cased, dotted operators are mapped to
    their symbolic spelling).
    """

    kind: str
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"


def _is_fixed_comment(raw: str) -> bool:
    """A fixed-form comment line.

    Column 1 ``*`` always marks a comment.  Column 1 ``C``/``c`` marks a
    comment only when it cannot begin a keyword: the next character must not
    be alphanumeric (so ``call`` / ``common`` / ``continue`` written at
    column 1 still parse as code in relaxed free form).
    """

    if not raw:
        return False
    if raw[0] == "*":
        return True
    if raw[0] in "Cc":
        return len(raw) == 1 or not (raw[1].isalnum() or raw[1] == "_")
    return False


def _strip_inline_comment(text: str) -> str:
    """Remove a trailing ``!`` comment, respecting quoted strings."""

    in_str = False
    for i, ch in enumerate(text):
        if ch == "'":
            in_str = not in_str
        elif ch == "!" and not in_str:
            return text[:i]
    return text


class _LogicalLine:
    """One logical statement after continuation splicing."""

    __slots__ = ("text", "line", "label")

    def __init__(self, text: str, line: int, label: Optional[int]) -> None:
        self.text = text
        self.line = line
        self.label = label


def _logical_lines(source: str) -> Iterator[_LogicalLine]:
    """Splice physical lines into logical statements.

    Handles fixed-form comments/labels/continuations and free-form ``&``
    continuations.  Directive comments (``C$...`` / ``CDIR$``) are dropped;
    the printer re-inserts parallel directives from AST flags instead.
    """

    pending: Optional[_LogicalLine] = None
    for lineno, raw in enumerate(source.splitlines(), start=1):
        if not raw.strip():
            continue
        stripped = raw.strip()
        # Parallel directives survive as pseudo-statements so the DOALL
        # marking round-trips through print/parse.
        if stripped.lower().startswith("c$par "):
            if pending is not None:
                yield pending
                pending = None
            # "c$par doall …" → pseudo-statement "doall …".
            yield _LogicalLine(stripped[6:].strip(), lineno, None)
            continue
        # Full-line comments: fixed-form column-1 marker or leading '!'.
        if _is_fixed_comment(raw) or stripped.startswith("!"):
            continue
        text = _strip_inline_comment(raw)
        if not text.strip():
            continue
        # Fixed-form continuation: blank label field, non-blank/non-'0' col 6.
        if (
            len(text) >= 6
            and text[:5].strip() == ""
            and text[5] not in (" ", "0")
            and pending is not None
        ):
            pending.text += " " + text[6:].strip()
            continue
        if pending is not None:
            yield pending
            pending = None
        label: Optional[int] = None
        body = text
        # Fixed-form label field: columns 1-5 numeric.
        lead = text[:5]
        if lead.strip().isdigit() and (len(text) <= 5 or text[5] in " 0"):
            label = int(lead.strip())
            body = text[6:] if len(text) > 6 else ""
        else:
            # Relaxed: "10 continue" with label at line start.
            ls = text.lstrip()
            i = 0
            while i < len(ls) and ls[i].isdigit():
                i += 1
            if i and i < len(ls) and ls[i] == " ":
                label = int(ls[:i])
                body = ls[i:]
        pending = _LogicalLine(body.strip(), lineno, label)
    if pending is not None:
        yield pending


def _splice_free_continuations(lines: List[_LogicalLine]) -> List[_LogicalLine]:
    """Merge logical lines that end in ``&`` with their successors."""

    out: List[_LogicalLine] = []
    for ll in lines:
        if out and out[-1].text.endswith("&"):
            out[-1].text = out[-1].text[:-1].rstrip() + " " + ll.text
        else:
            out.append(ll)
    return out


class Lexer:
    """Tokenize Fortran source into a list of :class:`Token`.

    Usage::

        tokens = Lexer(source).tokens()
    """

    def __init__(self, source: str) -> None:
        self.source = source

    def tokens(self) -> List[Token]:
        toks: List[Token] = []
        lines = _splice_free_continuations(list(_logical_lines(self.source)))
        for ll in lines:
            if ll.label is not None:
                toks.append(Token(LABEL, str(ll.label), ll.line, 1))
            toks.extend(self._lex_statement(ll.text, ll.line))
            toks.append(Token(NEWLINE, "\n", ll.line, len(ll.text) + 1))
        toks.append(Token(EOF, "", lines[-1].line + 1 if lines else 1, 1))
        return toks

    # -- statement-level scanning ------------------------------------------

    def _lex_statement(self, text: str, line: int) -> List[Token]:
        toks: List[Token] = []
        i = 0
        n = len(text)
        while i < n:
            ch = text[i]
            col = i + 1
            if ch in " \t":
                i += 1
                continue
            if ch == "'":
                j = i + 1
                buf = []
                while j < n:
                    if text[j] == "'":
                        if j + 1 < n and text[j + 1] == "'":
                            buf.append("'")
                            j += 2
                            continue
                        break
                    buf.append(text[j])
                    j += 1
                else:
                    raise LexError("unterminated string literal", line, col)
                toks.append(Token(STRING, "".join(buf), line, col))
                i = j + 1
                continue
            if ch == ".":
                matched = False
                low = text[i : i + 7].lower()
                for dotted, canon in _DOT_OPS.items():
                    if low.startswith(dotted):
                        toks.append(Token(OP, canon, line, col))
                        i += len(dotted)
                        matched = True
                        break
                if matched:
                    continue
                if i + 1 < n and text[i + 1].isdigit():
                    tok, i = self._lex_number(text, i, line)
                    toks.append(tok)
                    continue
                raise LexError(f"unexpected character {ch!r}", line, col)
            if ch.isdigit():
                tok, i = self._lex_number(text, i, line)
                toks.append(tok)
                continue
            if ch.isalpha() or ch == "_":
                j = i
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                toks.append(Token(NAME, text[i:j].lower(), line, col))
                i = j
                continue
            two = text[i : i + 2]
            if two in _MULTI_OPS:
                toks.append(Token(OP, two, line, col))
                i += 2
                continue
            if ch in _SINGLE_OPS:
                toks.append(Token(OP, ch, line, col))
                i += 1
                continue
            raise LexError(f"unexpected character {ch!r}", line, col)
        return toks

    def _lex_number(self, text: str, i: int, line: int) -> tuple:
        """Scan an integer or real literal starting at ``text[i]``."""

        n = len(text)
        col = i + 1
        j = i
        is_real = False
        while j < n and text[j].isdigit():
            j += 1
        if j < n and text[j] == ".":
            # Not a dotted operator like 1.eq. — require digit or non-letter.
            rest = text[j : j + 5].lower()
            if not any(rest.startswith(d) for d in _DOT_OPS):
                is_real = True
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
        if j < n and text[j] in "eEdD":
            k = j + 1
            if k < n and text[k] in "+-":
                k += 1
            if k < n and text[k].isdigit():
                is_real = True
                j = k
                while j < n and text[j].isdigit():
                    j += 1
        value = text[i:j].lower().replace("d", "e")
        kind = REAL if is_real else INT
        return Token(kind, value, line, col), j


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` and return the token list."""

    return Lexer(source).tokens()
