"""Unparser: regenerate Fortran source from the AST.

The printer produces relaxed free-form Fortran that the parser accepts, so
``parse(print(ast))`` round-trips structurally.  Transformed programs are
materialised through this module; parallel loops are emitted with a
``c$par doall`` directive comment line (consumed as a comment on re-parse;
the ``parallel`` flag lives in the AST, not the text).
"""

from __future__ import annotations

from typing import List

from .ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    CommonDecl,
    ContinueStmt,
    DataDecl,
    DimensionDecl,
    DoLoop,
    Entity,
    Expr,
    ExternalDecl,
    FuncRef,
    GotoStmt,
    If,
    ImplicitNone,
    IntrinsicDecl,
    IOStmt,
    LogicalLit,
    NameArgs,
    Num,
    ParameterDecl,
    ProcedureUnit,
    ReturnStmt,
    SaveDecl,
    SourceFile,
    Stmt,
    StopStmt,
    Str,
    TypeDecl,
    UnOp,
    VarRef,
)

#: Operator precedence for minimal parenthesisation.
_PREC = {
    ".or.": 1,
    ".eqv.": 1,
    ".neqv.": 1,
    ".and.": 2,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "==": 4,
    "/=": 4,
    "//": 5,
    "+": 6,
    "-": 6,
    "*": 7,
    "/": 7,
    "**": 9,
}

#: Symbolic relational spellings back to Fortran 77 dotted form.
_REL_BACK = {
    "<": ".lt.",
    "<=": ".le.",
    ">": ".gt.",
    ">=": ".ge.",
    "==": ".eq.",
    "/=": ".ne.",
}


def expr_to_str(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses."""

    if isinstance(expr, Num):
        if isinstance(expr.value, int):
            return str(expr.value)
        text = repr(expr.value)
        return text
    if isinstance(expr, Str):
        return "'" + expr.value.replace("'", "''") + "'"
    if isinstance(expr, LogicalLit):
        return ".true." if expr.value else ".false."
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, (ArrayRef, FuncRef, NameArgs)):
        args = expr.subs if isinstance(expr, ArrayRef) else expr.args
        return f"{expr.name}({', '.join(expr_to_str(a) for a in args)})"
    if isinstance(expr, UnOp):
        if expr.op == ".not.":
            inner = expr_to_str(expr.operand, 3)
            return f".not. {inner}"
        inner = expr_to_str(expr.operand, 8)
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_prec >= 6 else text
    if isinstance(expr, BinOp):
        prec = _PREC[expr.op]
        op = _REL_BACK.get(expr.op, expr.op)
        left = expr_to_str(expr.left, prec)
        # Add 1 on the right for left-associative operators so that
        # a - (b - c) keeps its parentheses.
        right_prec = prec if expr.op == "**" else prec + 1
        right = expr_to_str(expr.right, right_prec)
        text = f"{left} {op} {right}"
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"cannot print {type(expr).__name__}")


def _entity_to_str(ent: Entity) -> str:
    if ent.dims is None:
        return ent.name
    parts = []
    for lo, hi in ent.dims:
        if lo is None:
            parts.append(expr_to_str(hi))
        else:
            parts.append(f"{expr_to_str(lo)}:{expr_to_str(hi)}")
    return f"{ent.name}({', '.join(parts)})"


class _Printer:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def emit(self, depth: int, text: str, label: int = None) -> None:  # type: ignore[assignment]
        prefix = f"{label:>5d} " if label is not None else "      "
        self.lines.append(prefix + "  " * depth + text)

    def stmt(self, st: Stmt, depth: int) -> None:
        if isinstance(st, Assign):
            self.emit(depth, f"{expr_to_str(st.target)} = {expr_to_str(st.expr)}", st.label)
        elif isinstance(st, DoLoop):
            if st.parallel:
                extras = ""
                if st.private:
                    extras += f" private({', '.join(st.private)})"
                for op, var in st.reductions:
                    extras += f" reduction({op}:{var})"
                self.lines.append(f"c$par doall{extras}")
            head = f"do {st.var} = {expr_to_str(st.start)}, {expr_to_str(st.end)}"
            if st.step is not None:
                head += f", {expr_to_str(st.step)}"
            self.emit(depth, head, st.label)
            for inner in st.body:
                self.stmt(inner, depth + 1)
            self.emit(depth, "end do")
        elif isinstance(st, If):
            if not st.block:
                cond, body = st.arms[0]
                inner = _single_stmt_text(body[0])
                self.emit(depth, f"if ({expr_to_str(cond)}) {inner}", st.label)
                return
            first = True
            for cond, body in st.arms:
                if first:
                    self.emit(depth, f"if ({expr_to_str(cond)}) then", st.label)
                    first = False
                elif cond is not None:
                    self.emit(depth, f"else if ({expr_to_str(cond)}) then")
                else:
                    self.emit(depth, "else")
                for inner in body:
                    self.stmt(inner, depth + 1)
            self.emit(depth, "end if")
        elif isinstance(st, CallStmt):
            args = ", ".join(expr_to_str(a) for a in st.args)
            self.emit(depth, f"call {st.name}({args})", st.label)
        elif isinstance(st, ReturnStmt):
            self.emit(depth, "return", st.label)
        elif isinstance(st, StopStmt):
            self.emit(depth, "stop", st.label)
        elif isinstance(st, ContinueStmt):
            self.emit(depth, "continue", st.label)
        elif isinstance(st, GotoStmt):
            self.emit(depth, f"goto {st.target}", st.label)
        elif isinstance(st, IOStmt):
            self.emit(depth, _io_text(st), st.label)
        elif isinstance(st, TypeDecl):
            names = ", ".join(_entity_to_str(e) for e in st.entities)
            tn = "double precision" if st.typename == "doubleprecision" else st.typename
            self.emit(depth, f"{tn} {names}", st.label)
        elif isinstance(st, DimensionDecl):
            names = ", ".join(_entity_to_str(e) for e in st.entities)
            self.emit(depth, f"dimension {names}", st.label)
        elif isinstance(st, CommonDecl):
            names = ", ".join(_entity_to_str(e) for e in st.entities)
            block = f"/{st.block}/ " if st.block else ""
            self.emit(depth, f"common {block}{names}", st.label)
        elif isinstance(st, ParameterDecl):
            inner = ", ".join(f"{n} = {expr_to_str(e)}" for n, e in st.assigns)
            self.emit(depth, f"parameter ({inner})", st.label)
        elif isinstance(st, DataDecl):
            inner = ", ".join(f"{n} /{expr_to_str(e)}/" for n, e in st.items)
            self.emit(depth, f"data {inner}", st.label)
        elif isinstance(st, ExternalDecl):
            self.emit(depth, f"external {', '.join(st.names)}", st.label)
        elif isinstance(st, IntrinsicDecl):
            self.emit(depth, f"intrinsic {', '.join(st.names)}", st.label)
        elif isinstance(st, SaveDecl):
            self.emit(depth, f"save {', '.join(st.names)}", st.label)
        elif isinstance(st, ImplicitNone):
            self.emit(depth, "implicit none", st.label)
        else:
            raise TypeError(f"cannot print {type(st).__name__}")

    def unit(self, u: ProcedureUnit) -> None:
        if u.kind == "program":
            self.emit(0, f"program {u.name}")
        elif u.kind == "subroutine":
            formals = ", ".join(u.formals)
            self.emit(0, f"subroutine {u.name}({formals})")
        else:
            formals = ", ".join(u.formals)
            prefix = ""
            if u.rettype:
                prefix = (
                    "double precision "
                    if u.rettype == "doubleprecision"
                    else u.rettype + " "
                )
            self.emit(0, f"{prefix}function {u.name}({formals})")
        for d in u.decls:
            self.stmt(d, 1)
        for st in u.body:
            self.stmt(st, 1)
        self.emit(0, "end")


def _single_stmt_text(st: Stmt) -> str:
    p = _Printer()
    p.stmt(st, 0)
    return p.lines[0][6:].strip()


def _io_text(st: IOStmt) -> str:
    items = ", ".join(expr_to_str(e) for e in st.items)
    if st.kind == "print":
        spec = expr_to_str(st.spec[0]) if st.spec else "*"
        return f"print {spec}, {items}" if items else f"print {spec}"
    spec = ", ".join(expr_to_str(e) for e in st.spec) or "*, *"
    text = f"{st.kind} ({spec})"
    return f"{text} {items}" if items else text


def unit_to_source(unit: ProcedureUnit) -> str:
    """Render a single program unit to source text."""

    p = _Printer()
    p.unit(unit)
    return "\n".join(p.lines) + "\n"


def to_source(sf: SourceFile) -> str:
    """Render a full :class:`SourceFile` to source text."""

    p = _Printer()
    for u in sf.units:
        p.unit(u)
        p.lines.append("")
    return "\n".join(p.lines)
