"""Recursive-descent parser for the Fortran 77 subset.

The parser is organised in two layers:

1. The lexer output is regrouped into *statement token lists* (one list per
   logical statement, with its optional label and source line).
2. A cursor over those statements drives recursive-descent parsing of
   program units and structured constructs (block IF, both DO spellings).

Expression parsing uses precedence climbing with the standard Fortran
operator precedence: ``.or.`` < ``.and.`` < ``.not.`` < relational < ``//``
< additive < multiplicative < unary < ``**`` (right associative).

``name(args)`` forms are parsed as :class:`NameArgs`; the binder resolves
them to array or function references (Fortran has no reserved words and the
distinction needs declarations).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import lexer as lx
from .ast_nodes import (
    Assign,
    BinOp,
    CallStmt,
    CommonDecl,
    ContinueStmt,
    DataDecl,
    DimensionDecl,
    DoLoop,
    Entity,
    Expr,
    ExternalDecl,
    GotoStmt,
    If,
    ImplicitNone,
    IntrinsicDecl,
    IOStmt,
    LogicalLit,
    NameArgs,
    Num,
    ParameterDecl,
    ProcedureUnit,
    ReturnStmt,
    SaveDecl,
    SourceFile,
    Stmt,
    StopStmt,
    Str,
    TypeDecl,
    UnOp,
    VarRef,
)
from .errors import ParseError
from .lexer import Token

#: Canonical type-declaration keywords (``double precision`` is normalised
#: to ``doubleprecision`` during statement recognition).
_TYPE_KEYWORDS = {
    "integer",
    "real",
    "doubleprecision",
    "logical",
    "character",
    "complex",
}

_REL_OPS = {"<", "<=", ">", ">=", "==", "/="}
_ADD_OPS = {"+", "-"}
_MUL_OPS = {"*", "/"}


class _StmtTokens:
    """One logical statement as a token list with label and line."""

    __slots__ = ("label", "toks", "line")

    def __init__(self, label: Optional[int], toks: List[Token], line: int) -> None:
        self.label = label
        self.toks = toks
        self.line = line

    def first_name(self) -> str:
        if self.toks and self.toks[0].kind == lx.NAME:
            return self.toks[0].value
        return ""


def _group_statements(tokens: List[Token]) -> List[_StmtTokens]:
    stmts: List[_StmtTokens] = []
    label: Optional[int] = None
    cur: List[Token] = []
    line = 1
    for tok in tokens:
        if tok.kind == lx.LABEL:
            label = int(tok.value)
        elif tok.kind == lx.NEWLINE:
            if cur:
                stmts.append(_StmtTokens(label, cur, cur[0].line))
            label = None
            cur = []
        elif tok.kind == lx.EOF:
            break
        else:
            if not cur:
                line = tok.line
            cur.append(tok)
    if cur:
        stmts.append(_StmtTokens(label, cur, line))
    return stmts


class _ExprParser:
    """Precedence-climbing expression parser over one statement's tokens."""

    def __init__(self, toks: List[Token], pos: int = 0) -> None:
        self.toks = toks
        self.pos = pos

    # -- token helpers -------------------------------------------------

    def peek(self) -> Optional[Token]:
        return self.toks[self.pos] if self.pos < len(self.toks) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            last = self.toks[-1] if self.toks else None
            raise ParseError(
                "unexpected end of statement",
                last.line if last else 0,
                last.col if last else 0,
            )
        self.pos += 1
        return tok

    def expect_op(self, op: str) -> Token:
        tok = self.next()
        if tok.kind != lx.OP or tok.value != op:
            raise ParseError(f"expected {op!r}, found {tok.value!r}", tok.line, tok.col)
        return tok

    def at_op(self, *ops: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.kind == lx.OP and tok.value in ops

    def done(self) -> bool:
        return self.pos >= len(self.toks)

    # -- grammar ---------------------------------------------------------

    def expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self.at_op(".or.", ".eqv.", ".neqv."):
            op = self.next().value
            right = self._and_expr()
            left = BinOp(left.line, op, left, right)
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self.at_op(".and."):
            self.next()
            right = self._not_expr()
            left = BinOp(left.line, ".and.", left, right)
        return left

    def _not_expr(self) -> Expr:
        if self.at_op(".not."):
            tok = self.next()
            return UnOp(tok.line, ".not.", self._not_expr())
        return self._rel_expr()

    def _rel_expr(self) -> Expr:
        left = self._concat_expr()
        if self.at_op(*_REL_OPS):
            op = self.next().value
            right = self._concat_expr()
            return BinOp(left.line, op, left, right)
        return left

    def _concat_expr(self) -> Expr:
        left = self._add_expr()
        while self.at_op("//"):
            self.next()
            right = self._add_expr()
            left = BinOp(left.line, "//", left, right)
        return left

    def _add_expr(self) -> Expr:
        if self.at_op("+", "-"):
            tok = self.next()
            operand = self._mul_expr()
            left: Expr = (
                operand if tok.value == "+" else UnOp(tok.line, "-", operand)
            )
        else:
            left = self._mul_expr()
        while self.at_op(*_ADD_OPS):
            op = self.next().value
            right = self._mul_expr()
            left = BinOp(left.line, op, left, right)
        return left

    def _mul_expr(self) -> Expr:
        left = self._unary_expr()
        while self.at_op(*_MUL_OPS):
            op = self.next().value
            right = self._unary_expr()
            left = BinOp(left.line, op, left, right)
        return left

    def _unary_expr(self) -> Expr:
        if self.at_op("+", "-"):
            tok = self.next()
            operand = self._unary_expr()
            if tok.value == "+":
                return operand
            return UnOp(tok.line, "-", operand)
        return self._power_expr()

    def _power_expr(self) -> Expr:
        base = self._primary()
        if self.at_op("**"):
            self.next()
            # Right associative: a ** b ** c == a ** (b ** c)
            exponent = self._unary_expr()
            return BinOp(base.line, "**", base, exponent)
        return base

    def _primary(self) -> Expr:
        tok = self.next()
        if tok.kind == lx.INT:
            return Num(tok.line, int(tok.value))
        if tok.kind == lx.REAL:
            return Num(tok.line, float(tok.value))
        if tok.kind == lx.STRING:
            return Str(tok.line, tok.value)
        if tok.kind == lx.OP and tok.value in (".true.", ".false."):
            return LogicalLit(tok.line, tok.value == ".true.")
        if tok.kind == lx.OP and tok.value == "(":
            inner = self.expression()
            self.expect_op(")")
            return inner
        if tok.kind == lx.NAME:
            if self.at_op("("):
                self.next()
                args: List[Expr] = []
                if not self.at_op(")"):
                    args.append(self.expression())
                    while self.at_op(","):
                        self.next()
                        args.append(self.expression())
                self.expect_op(")")
                return NameArgs(tok.line, tok.value, args)
            return VarRef(tok.line, tok.value)
        raise ParseError(f"unexpected token {tok.value!r}", tok.line, tok.col)

    def arg_list(self) -> List[Expr]:
        """Parse ``( expr, ... )`` (possibly empty)."""

        self.expect_op("(")
        args: List[Expr] = []
        if not self.at_op(")"):
            args.append(self.expression())
            while self.at_op(","):
                self.next()
                args.append(self.expression())
        self.expect_op(")")
        return args


class Parser:
    """Parse a full source file into a :class:`SourceFile`."""

    def __init__(self, source: str) -> None:
        self.stmts = _group_statements(lx.tokenize(source))
        self.idx = 0

    # -- statement cursor ----------------------------------------------

    def _peek_stmt(self) -> Optional[_StmtTokens]:
        return self.stmts[self.idx] if self.idx < len(self.stmts) else None

    def _next_stmt(self) -> _StmtTokens:
        st = self._peek_stmt()
        if st is None:
            raise ParseError("unexpected end of file")
        self.idx += 1
        return st

    # -- entry point -----------------------------------------------------

    def parse(self) -> SourceFile:
        units: List[ProcedureUnit] = []
        while self._peek_stmt() is not None:
            units.append(self._parse_unit())
        return SourceFile(units)

    # -- program units ---------------------------------------------------

    def _parse_unit(self) -> ProcedureUnit:
        st = self._next_stmt()
        kw = _normalized_keyword(st)
        line = st.line
        rettype: Optional[str] = None
        if kw in _TYPE_KEYWORDS:
            # Could be "real function f(x)".
            ep = _ExprParser(st.toks, 1 if kw != "doubleprecision" else 2)
            nxt = ep.peek()
            if nxt is not None and nxt.kind == lx.NAME and nxt.value == "function":
                rettype = kw
                ep.next()
                name_tok = ep.next()
                formals = [a.name for a in ep.arg_list()] if ep.at_op("(") else []  # type: ignore[union-attr]
                unit = ProcedureUnit("function", name_tok.value, formals, rettype, line=line)
                self._parse_unit_body(unit)
                return unit
            # Otherwise it is a declaration inside an implicit main program.
            self.idx -= 1
            unit = ProcedureUnit("program", "main", line=line)
            self._parse_unit_body(unit)
            return unit
        if kw == "program":
            name = st.toks[1].value
            unit = ProcedureUnit("program", name, line=line)
            self._parse_unit_body(unit)
            return unit
        if kw in ("subroutine", "function"):
            ep = _ExprParser(st.toks, 1)
            name_tok = ep.next()
            formals: List[str] = []
            if ep.at_op("("):
                for arg in ep.arg_list():
                    if not isinstance(arg, VarRef):
                        raise ParseError("bad formal parameter", st.line, 1)
                    formals.append(arg.name)
            unit = ProcedureUnit(kw, name_tok.value, formals, rettype, line=line)
            self._parse_unit_body(unit)
            return unit
        # Headerless main program.
        self.idx -= 1
        unit = ProcedureUnit("program", "main", line=line)
        self._parse_unit_body(unit)
        return unit

    def _parse_unit_body(self, unit: ProcedureUnit) -> None:
        # Specification part.
        while True:
            st = self._peek_stmt()
            if st is None:
                raise ParseError(f"missing END for unit {unit.name!r}", unit.line)
            kw = _normalized_keyword(st)
            decl = self._try_parse_decl(st, kw)
            if decl is None:
                break
            self.idx += 1
            unit.decls.append(decl)
        # Executable part.
        unit.body = self._parse_block({"end"})
        end_stmt = self._next_stmt()  # consume END
        del end_stmt

    # -- declarations ------------------------------------------------------

    def _try_parse_decl(self, st: _StmtTokens, kw: str) -> Optional[Stmt]:
        if kw in _TYPE_KEYWORDS and not _looks_like_assignment(st):
            skip = 2 if _raw_two_words(st) == ("double", "precision") else 1
            # "real function f" already handled at unit level; a nested one
            # here would be an error we let the entity parser catch.
            ep = _ExprParser(st.toks, skip)
            # character*8 style length spec: skip it.
            if kw == "character" and ep.at_op("*"):
                ep.next()
                ep.next()
            entities = self._parse_entities(ep, st.line)
            return TypeDecl(st.line, st.label, -1, kw, entities)
        if kw == "dimension":
            ep = _ExprParser(st.toks, 1)
            return DimensionDecl(st.line, st.label, -1, self._parse_entities(ep, st.line))
        if kw == "common":
            ep = _ExprParser(st.toks, 1)
            block = ""
            if ep.at_op("/"):
                ep.next()
                block = ep.next().value
                ep.expect_op("/")
            return CommonDecl(st.line, st.label, -1, block, self._parse_entities(ep, st.line))
        if kw == "parameter":
            ep = _ExprParser(st.toks, 1)
            ep.expect_op("(")
            assigns: List[Tuple[str, Expr]] = []
            while True:
                name = ep.next().value
                ep.expect_op("=")
                assigns.append((name, ep.expression()))
                if ep.at_op(","):
                    ep.next()
                    continue
                break
            ep.expect_op(")")
            return ParameterDecl(st.line, st.label, -1, assigns)
        if kw == "data":
            ep = _ExprParser(st.toks, 1)
            items: List[Tuple[str, Expr]] = []
            while not ep.done():
                name = ep.next().value
                ep.expect_op("/")
                # DATA values are constants; a full expression parse would
                # swallow the closing '/' as a division operator.
                if ep.at_op("-"):
                    tok = ep.next()
                    value: Expr = UnOp(tok.line, "-", ep._primary())
                else:
                    value = ep._primary()
                items.append((name, value))
                ep.expect_op("/")
                if ep.at_op(","):
                    ep.next()
            return DataDecl(st.line, st.label, -1, items)
        if kw == "external":
            return ExternalDecl(st.line, st.label, -1, _name_list(st.toks[1:]))
        if kw == "intrinsic":
            return IntrinsicDecl(st.line, st.label, -1, _name_list(st.toks[1:]))
        if kw == "save":
            return SaveDecl(st.line, st.label, -1, _name_list(st.toks[1:]))
        if kw == "implicit":
            return ImplicitNone(st.line, st.label, -1)
        return None

    def _parse_entities(self, ep: _ExprParser, line: int) -> List[Entity]:
        entities: List[Entity] = []
        while not ep.done():
            name_tok = ep.next()
            if name_tok.kind != lx.NAME:
                raise ParseError("expected name in declaration", line, name_tok.col)
            dims: Optional[List[Tuple[Optional[Expr], Expr]]] = None
            if ep.at_op("("):
                ep.next()
                dims = []
                while True:
                    dims.append(self._parse_dim(ep))
                    if ep.at_op(","):
                        ep.next()
                        continue
                    break
                ep.expect_op(")")
            entities.append(Entity(name_tok.value, dims, line))
            if ep.at_op(","):
                ep.next()
                continue
            break
        return entities

    def _parse_dim(self, ep: _ExprParser) -> Tuple[Optional[Expr], Expr]:
        if ep.at_op("*"):
            tok = ep.next()
            return (None, VarRef(tok.line, "*"))
        first = ep.expression()
        if ep.at_op(":"):
            ep.next()
            if ep.at_op("*"):
                tok = ep.next()
                return (first, VarRef(tok.line, "*"))
            return (first, ep.expression())
        return (None, first)

    # -- executable statements ----------------------------------------------

    def _parse_block(self, terminators: set, end_label: Optional[int] = None) -> List[Stmt]:
        """Parse statements until a terminator keyword (not consumed) or, if
        ``end_label`` is given, until the statement carrying that label has
        been consumed."""

        body: List[Stmt] = []
        while True:
            st = self._peek_stmt()
            if st is None:
                raise ParseError("unexpected end of file in block")
            kw = _normalized_keyword(st)
            if end_label is None and kw in terminators and not _looks_like_assignment(st):
                return body
            stmt = self._parse_statement()
            body.append(stmt)
            if end_label is not None and stmt.label == end_label:
                return body

    def _parse_statement(self) -> Stmt:
        st = self._next_stmt()
        kw = _normalized_keyword(st)
        if _looks_like_assignment(st):
            return self._parse_assign(st)
        if kw == "doall":
            return self._parse_doall_directive(st)
        if kw == "do":
            return self._parse_do(st)
        if kw == "if":
            return self._parse_if(st)
        if kw == "call":
            ep = _ExprParser(st.toks, 1)
            name = ep.next().value
            args = ep.arg_list() if ep.at_op("(") else []
            return CallStmt(st.line, st.label, -1, name, args)
        if kw == "goto":
            tok = st.toks[-1]
            return GotoStmt(st.line, st.label, -1, int(tok.value))
        if kw == "return":
            return ReturnStmt(st.line, st.label, -1)
        if kw == "stop":
            return StopStmt(st.line, st.label, -1)
        if kw == "continue":
            return ContinueStmt(st.line, st.label, -1)
        if kw in ("write", "read", "print"):
            return self._parse_io(st, kw)
        raise ParseError(
            f"unrecognised statement starting with {st.toks[0].value!r}",
            st.line,
            st.toks[0].col,
        )

    def _parse_doall_directive(self, st: _StmtTokens) -> Stmt:
        """``c$par doall [private(a, b)] [reduction(op:var)]…`` — the
        directive line produced by the printer; it attaches its attributes
        to the DO loop that must follow."""

        private: List[str] = []
        reductions: List[Tuple[str, str]] = []
        ep = _ExprParser(st.toks, 1)
        while not ep.done():
            tok = ep.next()
            if tok.kind != lx.NAME:
                raise ParseError("malformed c$par directive", st.line, tok.col)
            if tok.value == "private":
                ep.expect_op("(")
                while not ep.at_op(")"):
                    name_tok = ep.next()
                    private.append(name_tok.value)
                    if ep.at_op(","):
                        ep.next()
                ep.expect_op(")")
            elif tok.value == "reduction":
                ep.expect_op("(")
                op_tok = ep.next()
                ep.expect_op(":")
                var_tok = ep.next()
                ep.expect_op(")")
                reductions.append((op_tok.value, var_tok.value))
            else:
                raise ParseError(
                    f"unknown directive clause {tok.value!r}", st.line, tok.col
                )
        loop = self._parse_statement()
        if not isinstance(loop, DoLoop):
            raise ParseError("c$par doall must precede a DO loop", st.line)
        loop.parallel = True
        loop.private = private
        loop.reductions = reductions
        return loop

    def _parse_assign(self, st: _StmtTokens) -> Assign:
        ep = _ExprParser(st.toks, 0)
        target = ep._primary()
        ep.expect_op("=")
        expr = ep.expression()
        if not ep.done():
            tok = ep.peek()
            raise ParseError(
                f"trailing tokens after assignment: {tok.value!r}",  # type: ignore[union-attr]
                st.line,
                tok.col,  # type: ignore[union-attr]
            )
        return Assign(st.line, st.label, -1, target, expr)

    def _parse_do(self, st: _StmtTokens) -> DoLoop:
        ep = _ExprParser(st.toks, 1)
        end_label: Optional[int] = None
        tok = ep.peek()
        if tok is not None and tok.kind == lx.INT:
            end_label = int(ep.next().value)
        var_tok = ep.next()
        if var_tok.kind != lx.NAME:
            raise ParseError("expected DO variable", st.line, var_tok.col)
        ep.expect_op("=")
        start = ep.expression()
        ep.expect_op(",")
        end = ep.expression()
        step: Optional[Expr] = None
        if ep.at_op(","):
            ep.next()
            step = ep.expression()
        if end_label is not None:
            body = self._parse_block(set(), end_label=end_label)
            # Drop a trailing bare CONTINUE that only exists to close the
            # loop; keep any other labeled terminal statement.
            if body and isinstance(body[-1], ContinueStmt):
                body = body[:-1]
        else:
            body = self._parse_block({"enddo", "end"})
            closer = self._next_stmt()
            if _normalized_keyword(closer) != "enddo":
                raise ParseError("DO loop not closed by END DO", closer.line)
        return DoLoop(
            st.line, st.label, -1, var_tok.value, start, end, step, body, end_label
        )

    def _parse_if(self, st: _StmtTokens) -> Stmt:
        ep = _ExprParser(st.toks, 1)
        ep.expect_op("(")
        cond = ep.expression()
        ep.expect_op(")")
        nxt = ep.peek()
        if nxt is not None and nxt.kind == lx.NAME and nxt.value == "then" and ep.pos == len(st.toks) - 1:
            arms: List[Tuple[Optional[Expr], List[Stmt]]] = []
            body = self._parse_block({"else", "elseif", "endif", "end"})
            arms.append((cond, body))
            while True:
                closer = self._next_stmt()
                ckw = _normalized_keyword(closer)
                if ckw == "endif":
                    break
                if ckw == "elseif":
                    cep = _ExprParser(closer.toks, 1)
                    # tokens may be "else if (..) then" normalised to elseif
                    cep.expect_op("(")
                    ccond = cep.expression()
                    cep.expect_op(")")
                    cbody = self._parse_block({"else", "elseif", "endif", "end"})
                    arms.append((ccond, cbody))
                    continue
                if ckw == "else":
                    cbody = self._parse_block({"endif", "end"})
                    arms.append((None, cbody))
                    continue
                raise ParseError("IF block not closed by END IF", closer.line)
            return If(st.line, st.label, -1, arms, True)
        # Logical IF: the remainder of this statement is a single statement.
        inner_tokens = st.toks[ep.pos :]
        inner = _StmtTokens(None, inner_tokens, st.line)
        saved = self.stmts[self.idx :]
        self.stmts = self.stmts[: self.idx] + [inner] + saved
        inner_stmt = self._parse_statement()
        return If(st.line, st.label, -1, [(cond, [inner_stmt])], False)

    def _parse_io(self, st: _StmtTokens, kw: str) -> IOStmt:
        ep = _ExprParser(st.toks, 1)
        spec: List[Expr] = []
        if kw in ("write", "read") and ep.at_op("("):
            ep.next()
            while not ep.at_op(")"):
                if ep.at_op("*"):
                    tok = ep.next()
                    spec.append(VarRef(tok.line, "*"))
                else:
                    spec.append(ep.expression())
                if ep.at_op(","):
                    ep.next()
            ep.expect_op(")")
        elif kw == "print":
            if ep.at_op("*"):
                tok = ep.next()
                spec.append(VarRef(tok.line, "*"))
            if ep.at_op(","):
                ep.next()
        items: List[Expr] = []
        while not ep.done():
            items.append(ep.expression())
            if ep.at_op(","):
                ep.next()
        return IOStmt(st.line, st.label, -1, kw, spec, items)


def _name_list(toks: List[Token]) -> List[str]:
    """Extract the comma-separated names of EXTERNAL/INTRINSIC/SAVE."""

    return [t.value for t in toks if t.kind == lx.NAME]


def _normalized_keyword(st: _StmtTokens) -> str:
    """Canonical leading keyword of a statement, merging two-word forms."""

    toks = st.toks
    if not toks or toks[0].kind != lx.NAME:
        return ""
    first = toks[0].value
    second = toks[1].value if len(toks) > 1 and toks[1].kind == lx.NAME else ""
    if first == "go" and second == "to":
        # Merge for the caller; the DO/IF parsers never see "go".
        st.toks = [Token(lx.NAME, "goto", toks[0].line, toks[0].col)] + toks[2:]
        return "goto"
    if first == "end" and second in ("do", "if"):
        st.toks = [Token(lx.NAME, "end" + second, toks[0].line, toks[0].col)]
        return "end" + second
    if first == "else" and second == "if":
        st.toks = [Token(lx.NAME, "elseif", toks[0].line, toks[0].col)] + toks[2:]
        return "elseif"
    if first == "double" and second == "precision":
        return "doubleprecision"
    return first


def _raw_two_words(st: _StmtTokens) -> Tuple[str, str]:
    toks = st.toks
    a = toks[0].value if toks and toks[0].kind == lx.NAME else ""
    b = toks[1].value if len(toks) > 1 and toks[1].kind == lx.NAME else ""
    return (a, b)


def _looks_like_assignment(st: _StmtTokens) -> bool:
    """True if the statement matches ``name [ (...) ] = ...``.

    Because Fortran has no reserved words, ``if(i) = 3`` is an assignment to
    array ``if``; this predicate performs the classical disambiguation by
    scanning for a top-level ``=`` after an optional parenthesised group.
    A DO statement header ``do i = 1, n`` also contains ``=`` — it is
    excluded by checking for a top-level comma after the ``=`` *only when*
    the statement starts with the DO pattern ``do [label] name =``.
    """

    toks = st.toks
    if not toks or toks[0].kind != lx.NAME:
        return False
    i = 1
    depth = 0
    if i < len(toks) and toks[i].kind == lx.OP and toks[i].value == "(":
        depth = 1
        i += 1
        while i < len(toks) and depth:
            if toks[i].kind == lx.OP and toks[i].value == "(":
                depth += 1
            elif toks[i].kind == lx.OP and toks[i].value == ")":
                depth -= 1
            i += 1
    if i >= len(toks) or toks[i].kind != lx.OP or toks[i].value != "=":
        return False
    # Exclude DO headers: "do i = 1, n" / "do 10 i = 1, n" have a top-level
    # comma after '='; assignments to a scalar named "do" do not.
    if toks[0].value == "do":
        depth = 0
        for tok in toks[i + 1 :]:
            if tok.kind != lx.OP:
                continue
            if tok.value == "(":
                depth += 1
            elif tok.value == ")":
                depth -= 1
            elif tok.value == "," and depth == 0:
                return False
    return True


def parse_source(source: str) -> SourceFile:
    """Parse Fortran ``source`` text into a :class:`SourceFile`."""

    return Parser(source).parse()
