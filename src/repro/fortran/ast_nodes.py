"""AST node definitions for the Fortran 77 subset.

Every node is a plain dataclass carrying a 1-based ``line`` for diagnostics.
Statements additionally carry:

* ``label`` — the numeric statement label, or ``None``;
* ``sid`` — a stable statement id assigned by :func:`number_statements`,
  used as the key into control-flow graphs and dependence graphs.

Expressions are side-effect free in this subset (function calls are treated
as opaque by the analyses unless interprocedural information is available).
The parser produces :class:`NameArgs` for every ``name(arg, ...)`` form; the
binder (:mod:`repro.fortran.symbols`) rewrites those into :class:`ArrayRef`
or :class:`FuncRef` once declarations are known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expression nodes."""

    line: int = 0

    def children(self) -> Iterator["Expr"]:
        return iter(())


@dataclass
class Num(Expr):
    """Integer or real literal. ``value`` is ``int`` or ``float``."""

    value: Union[int, float] = 0

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class Str(Expr):
    """Character literal."""

    value: str = ""


@dataclass
class LogicalLit(Expr):
    """``.true.`` / ``.false.``"""

    value: bool = False


@dataclass
class VarRef(Expr):
    """Reference to a scalar variable (or whole array used as an actual)."""

    name: str = ""


@dataclass
class NameArgs(Expr):
    """Unresolved ``name(args)`` — array element or function reference.

    The binder replaces these with :class:`ArrayRef` or :class:`FuncRef`.
    """

    name: str = ""
    args: List[Expr] = field(default_factory=list)

    def children(self) -> Iterator[Expr]:
        return iter(self.args)


@dataclass
class ArrayRef(Expr):
    """A subscripted array element reference ``a(i, j+1)``."""

    name: str = ""
    subs: List[Expr] = field(default_factory=list)

    def children(self) -> Iterator[Expr]:
        return iter(self.subs)


@dataclass
class FuncRef(Expr):
    """A function invocation in an expression (intrinsic or user)."""

    name: str = ""
    args: List[Expr] = field(default_factory=list)
    intrinsic: bool = False

    def children(self) -> Iterator[Expr]:
        return iter(self.args)


@dataclass
class BinOp(Expr):
    """Binary operation.  ``op`` uses canonical spellings from the lexer
    (``+ - * / ** // < <= > >= == /= .and. .or. .eqv. .neqv.``)."""

    op: str = "+"
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Expr]:
        yield self.left
        yield self.right


@dataclass
class UnOp(Expr):
    """Unary operation (``-``, ``+``, ``.not.``)."""

    op: str = "-"
    operand: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Expr]:
        yield self.operand


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statement nodes."""

    line: int = 0
    label: Optional[int] = None
    sid: int = -1

    def blocks(self) -> Iterator[List["Stmt"]]:
        """Yield each nested statement list (for structured statements)."""

        return iter(())


@dataclass
class Assign(Stmt):
    """Assignment ``target = expr``; target is VarRef or ArrayRef."""

    target: Expr = None  # type: ignore[assignment]
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class DoLoop(Stmt):
    """A DO loop.

    ``var`` is the induction variable name; ``start``/``end``/``step`` are
    expressions (``step`` defaults to literal 1).  ``parallel`` marks the
    loop as a DOALL after Ped's parallelization transformation; the printer
    emits a ``c$par doall`` directive for it.  ``end_label`` preserves the
    classic ``DO 10 I = ...`` spelling for round-tripping.
    """

    var: str = ""
    start: Expr = None  # type: ignore[assignment]
    end: Expr = None  # type: ignore[assignment]
    step: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)
    end_label: Optional[int] = None
    parallel: bool = False
    private: List[str] = field(default_factory=list)
    reductions: List[Tuple[str, str]] = field(default_factory=list)  # (op, var)

    def blocks(self) -> Iterator[List[Stmt]]:
        yield self.body


@dataclass
class If(Stmt):
    """Block IF with optional ELSE IF chain and ELSE.

    ``arms`` is a list of (condition, body); the final arm's condition is
    ``None`` for a plain ELSE.  A logical IF is represented as a single arm
    whose body holds one statement and ``block=False``.
    """

    arms: List[Tuple[Optional[Expr], List[Stmt]]] = field(default_factory=list)
    block: bool = True

    def blocks(self) -> Iterator[List[Stmt]]:
        for _, body in self.arms:
            yield body


@dataclass
class CallStmt(Stmt):
    """``CALL name(args)``"""

    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    pass


@dataclass
class StopStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class GotoStmt(Stmt):
    target: int = 0


@dataclass
class IOStmt(Stmt):
    """WRITE / PRINT / READ, parsed loosely: ``kind`` plus an item list.

    Control lists like ``(6, *)`` are preserved as expressions in ``spec``.
    READ items that are variables count as definitions in the analyses.
    """

    kind: str = "write"  # "write" | "print" | "read"
    spec: List[Expr] = field(default_factory=list)
    items: List[Expr] = field(default_factory=list)


# -- declarations ----------------------------------------------------------


@dataclass
class Entity:
    """A declared name with optional dimension declarators.

    ``dims`` is a list of ``(lower, upper)`` expression pairs; ``lower`` may
    be None (defaults to 1).  ``upper`` may be a ``VarRef('*')`` for assumed
    size.
    """

    name: str = ""
    dims: Optional[List[Tuple[Optional[Expr], Expr]]] = None
    line: int = 0


@dataclass
class TypeDecl(Stmt):
    """``INTEGER a, b(10)`` etc.  ``typename`` is canonical lower case."""

    typename: str = "integer"
    entities: List[Entity] = field(default_factory=list)


@dataclass
class DimensionDecl(Stmt):
    entities: List[Entity] = field(default_factory=list)


@dataclass
class CommonDecl(Stmt):
    """``COMMON /block/ a, b(10)``; blank common uses block name ''."""

    block: str = ""
    entities: List[Entity] = field(default_factory=list)


@dataclass
class ParameterDecl(Stmt):
    """``PARAMETER (n = 100, m = n*2)``"""

    assigns: List[Tuple[str, Expr]] = field(default_factory=list)


@dataclass
class DataDecl(Stmt):
    """``DATA x /1.0/, y /2.0/`` — names with initial-value expressions."""

    items: List[Tuple[str, Expr]] = field(default_factory=list)


@dataclass
class ExternalDecl(Stmt):
    names: List[str] = field(default_factory=list)


@dataclass
class IntrinsicDecl(Stmt):
    names: List[str] = field(default_factory=list)


@dataclass
class ImplicitNone(Stmt):
    pass


@dataclass
class SaveDecl(Stmt):
    names: List[str] = field(default_factory=list)


# --------------------------------------------------------------------------
# Program units
# --------------------------------------------------------------------------


@dataclass
class ProcedureUnit:
    """A program unit: PROGRAM, SUBROUTINE or FUNCTION.

    ``kind`` is one of ``"program" | "subroutine" | "function"``.
    ``decls`` holds the specification statements in order; ``body`` the
    executable statements.  ``symtab`` is attached by the binder.
    """

    kind: str
    name: str
    formals: List[str] = field(default_factory=list)
    rettype: Optional[str] = None
    decls: List[Stmt] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0
    symtab: Optional[object] = None  # repro.fortran.symbols.SymbolTable

    def all_statements(self) -> Iterator[Stmt]:
        """Yield every executable statement in lexical order, recursively."""

        yield from walk_statements(self.body)


@dataclass
class SourceFile:
    """A parsed source file: an ordered list of program units."""

    units: List[ProcedureUnit] = field(default_factory=list)

    def unit(self, name: str) -> ProcedureUnit:
        """Look up a unit by (case-insensitive) name."""

        low = name.lower()
        for u in self.units:
            if u.name == low:
                return u
        raise KeyError(name)


# --------------------------------------------------------------------------
# Traversal helpers
# --------------------------------------------------------------------------


def walk_statements(body: List[Stmt]) -> Iterator[Stmt]:
    """Depth-first, lexical-order traversal of a statement list."""

    for st in body:
        yield st
        for blk in st.blocks():
            yield from walk_statements(blk)


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Depth-first pre-order traversal of an expression tree."""

    yield expr
    for child in expr.children():
        yield from walk_expr(child)


def statement_exprs(st: Stmt) -> Iterator[Expr]:
    """Yield the top-level expressions of a statement (not nested bodies)."""

    if isinstance(st, Assign):
        yield st.target
        yield st.expr
    elif isinstance(st, DoLoop):
        yield st.start
        yield st.end
        if st.step is not None:
            yield st.step
    elif isinstance(st, If):
        for cond, _ in st.arms:
            if cond is not None:
                yield cond
    elif isinstance(st, CallStmt):
        yield from st.args
    elif isinstance(st, IOStmt):
        yield from st.spec
        yield from st.items


def number_statements(unit: ProcedureUnit) -> None:
    """Assign consecutive ``sid`` values to all executable statements."""

    for i, st in enumerate(walk_statements(unit.body)):
        st.sid = i


def copy_expr(expr: Expr) -> Expr:
    """Deep-copy an expression tree (cheaper than ``copy.deepcopy``)."""

    if isinstance(expr, Num):
        return Num(expr.line, expr.value)
    if isinstance(expr, Str):
        return Str(expr.line, expr.value)
    if isinstance(expr, LogicalLit):
        return LogicalLit(expr.line, expr.value)
    if isinstance(expr, VarRef):
        return VarRef(expr.line, expr.name)
    if isinstance(expr, ArrayRef):
        return ArrayRef(expr.line, expr.name, [copy_expr(s) for s in expr.subs])
    if isinstance(expr, FuncRef):
        return FuncRef(
            expr.line, expr.name, [copy_expr(a) for a in expr.args], expr.intrinsic
        )
    if isinstance(expr, NameArgs):
        return NameArgs(expr.line, expr.name, [copy_expr(a) for a in expr.args])
    if isinstance(expr, BinOp):
        return BinOp(expr.line, expr.op, copy_expr(expr.left), copy_expr(expr.right))
    if isinstance(expr, UnOp):
        return UnOp(expr.line, expr.op, copy_expr(expr.operand))
    raise TypeError(f"cannot copy {type(expr).__name__}")


def copy_stmt(st: Stmt) -> Stmt:
    """Deep-copy a statement (and nested bodies), preserving labels."""

    if isinstance(st, Assign):
        return Assign(st.line, st.label, -1, copy_expr(st.target), copy_expr(st.expr))
    if isinstance(st, DoLoop):
        return DoLoop(
            st.line,
            st.label,
            -1,
            st.var,
            copy_expr(st.start),
            copy_expr(st.end),
            copy_expr(st.step) if st.step is not None else None,
            [copy_stmt(s) for s in st.body],
            st.end_label,
            st.parallel,
            list(st.private),
            list(st.reductions),
        )
    if isinstance(st, If):
        return If(
            st.line,
            st.label,
            -1,
            [
                (copy_expr(c) if c is not None else None, [copy_stmt(s) for s in b])
                for c, b in st.arms
            ],
            st.block,
        )
    if isinstance(st, CallStmt):
        return CallStmt(st.line, st.label, -1, st.name, [copy_expr(a) for a in st.args])
    if isinstance(st, ReturnStmt):
        return ReturnStmt(st.line, st.label, -1)
    if isinstance(st, StopStmt):
        return StopStmt(st.line, st.label, -1)
    if isinstance(st, ContinueStmt):
        return ContinueStmt(st.line, st.label, -1)
    if isinstance(st, GotoStmt):
        return GotoStmt(st.line, st.label, -1, st.target)
    if isinstance(st, IOStmt):
        return IOStmt(
            st.line,
            st.label,
            -1,
            st.kind,
            [copy_expr(e) for e in st.spec],
            [copy_expr(e) for e in st.items],
        )
    raise TypeError(f"cannot copy {type(st).__name__}")
