"""Diagnostics for the Fortran front end.

All front-end failures raise :class:`FortranError` (or a subclass) carrying
the source coordinates of the offending construct so that the editor layer
can point at the exact line, mirroring Ped's incremental-parsing error
reporting.
"""

from __future__ import annotations


class FortranError(Exception):
    """Base class for all front-end diagnostics.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    line:
        1-based source line number, or 0 when unknown.
    col:
        1-based source column, or 0 when unknown.
    """

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.message = message
        self.line = line
        self.col = col
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line:
            return f"line {self.line}:{self.col}: {self.message}"
        return self.message


class LexError(FortranError):
    """Raised when the tokenizer encounters an unrecognised character."""


class ParseError(FortranError):
    """Raised when the parser cannot derive a statement."""


class SemanticError(FortranError):
    """Raised by the binder for inconsistent declarations or references."""
