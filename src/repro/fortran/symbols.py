"""Symbol tables and the binder pass.

The binder walks a parsed :class:`ProcedureUnit`, builds its
:class:`SymbolTable` from the specification statements, and resolves every
:class:`NameArgs` expression into either an :class:`ArrayRef` (the name is a
declared array) or a :class:`FuncRef` (intrinsic or external function).

Symbol *storage classes* distinguish locals, formals, COMMON members and
PARAMETER constants; the interprocedural analyses key on these to decide
what a call site can touch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CommonDecl,
    DataDecl,
    DimensionDecl,
    DoLoop,
    Entity,
    Expr,
    ExternalDecl,
    FuncRef,
    If,
    NameArgs,
    Num,
    ParameterDecl,
    ProcedureUnit,
    SourceFile,
    Stmt,
    TypeDecl,
    UnOp,
    VarRef,
    number_statements,
    walk_statements,
)
from .errors import SemanticError

#: Fortran intrinsic functions recognised without declaration.
INTRINSICS = frozenset(
    {
        "abs", "iabs", "dabs",
        "max", "min", "max0", "min0", "amax1", "amin1", "dmax1", "dmin1",
        "mod", "amod", "dmod",
        "sqrt", "dsqrt",
        "exp", "dexp", "log", "alog", "dlog", "log10", "alog10",
        "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
        "sinh", "cosh", "tanh",
        "int", "ifix", "idint", "nint", "float", "real", "dble", "sngl",
        "sign", "isign", "dsign", "dim", "idim",
        "len", "index", "ichar", "char",
    }
)

#: Storage classes.
LOCAL = "local"
FORMAL = "formal"
COMMON = "common"
PARAM = "parameter"
FUNC = "function"


@dataclass
class Symbol:
    """One declared (or implicitly typed) name within a unit."""

    name: str
    typename: str = "real"
    storage: str = LOCAL
    dims: Optional[List[Tuple[Optional[Expr], Expr]]] = None
    common_block: Optional[str] = None
    const_value: Optional[Expr] = None
    formal_index: Optional[int] = None
    line: int = 0

    @property
    def is_array(self) -> bool:
        return self.dims is not None

    @property
    def rank(self) -> int:
        return len(self.dims) if self.dims else 0


def implicit_type(name: str) -> str:
    """Classic implicit typing: I-N are INTEGER, everything else REAL."""

    return "integer" if name[0] in "ijklmn" else "real"


@dataclass
class SymbolTable:
    """All symbols of one program unit, keyed by lower-case name."""

    unit_name: str
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    common_blocks: Dict[str, List[str]] = field(default_factory=dict)

    def get(self, name: str) -> Optional[Symbol]:
        return self.symbols.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.symbols

    def __getitem__(self, name: str) -> Symbol:
        sym = self.get(name)
        if sym is None:
            raise KeyError(name)
        return sym

    def ensure(self, name: str, line: int = 0) -> Symbol:
        """Get or implicitly create a symbol."""

        low = name.lower()
        sym = self.symbols.get(low)
        if sym is None:
            sym = Symbol(low, implicit_type(low), LOCAL, line=line)
            self.symbols[low] = sym
        return sym

    def arrays(self) -> List[Symbol]:
        return [s for s in self.symbols.values() if s.is_array]

    def scalars(self) -> List[Symbol]:
        return [
            s
            for s in self.symbols.values()
            if not s.is_array and s.storage not in (PARAM, FUNC)
        ]

    def parameter_value(self, name: str) -> Optional[Expr]:
        sym = self.get(name)
        if sym is not None and sym.storage == PARAM:
            return sym.const_value
        return None


class Binder:
    """Build symbol tables and resolve ``NameArgs`` for every unit."""

    def __init__(self, sf: SourceFile) -> None:
        self.sf = sf
        self.unit_kinds: Dict[str, str] = {u.name: u.kind for u in sf.units}

    def bind(self) -> SourceFile:
        for unit in self.sf.units:
            self.bind_unit(unit)
        return self.sf

    # -- per-unit ---------------------------------------------------------

    def bind_unit(self, unit: ProcedureUnit) -> None:
        table = SymbolTable(unit.name)
        externals: set = set()
        for i, f in enumerate(unit.formals):
            table.symbols[f] = Symbol(f, implicit_type(f), FORMAL, formal_index=i)
        if unit.kind == "function":
            ret = Symbol(
                unit.name, unit.rettype or implicit_type(unit.name), LOCAL
            )
            table.symbols[unit.name] = ret
        for decl in unit.decls:
            self._bind_decl(decl, table, externals)
        unit.symtab = table
        # Resolve expressions in declarations that reference parameters.
        for st in walk_statements(unit.body):
            self._resolve_stmt(st, table, externals)
        number_statements(unit)

    def _bind_decl(self, decl: Stmt, table: SymbolTable, externals: set) -> None:
        if isinstance(decl, TypeDecl):
            for ent in decl.entities:
                sym = table.ensure(ent.name, ent.line)
                sym.typename = decl.typename
                if ent.dims is not None:
                    self._set_dims(sym, ent, decl.line)
        elif isinstance(decl, DimensionDecl):
            for ent in decl.entities:
                sym = table.ensure(ent.name, ent.line)
                self._set_dims(sym, ent, decl.line)
        elif isinstance(decl, CommonDecl):
            block = decl.block
            members = table.common_blocks.setdefault(block, [])
            for ent in decl.entities:
                sym = table.ensure(ent.name, ent.line)
                sym.storage = COMMON
                sym.common_block = block
                if ent.dims is not None:
                    self._set_dims(sym, ent, decl.line)
                members.append(ent.name)
        elif isinstance(decl, ParameterDecl):
            for name, expr in decl.assigns:
                sym = table.ensure(name, decl.line)
                sym.storage = PARAM
                sym.const_value = self._resolve_expr(expr, table, externals)
        elif isinstance(decl, ExternalDecl):
            for name in decl.names:
                externals.add(name)
                sym = table.ensure(name, decl.line)
                sym.storage = FUNC
        elif isinstance(decl, DataDecl):
            for name, _ in decl.items:
                table.ensure(name, decl.line)

    def _set_dims(self, sym: Symbol, ent: Entity, line: int) -> None:
        if sym.dims is not None and sym.dims != ent.dims:
            raise SemanticError(f"conflicting dimensions for {sym.name!r}", line)
        sym.dims = ent.dims

    # -- expression resolution ---------------------------------------------

    def _resolve_stmt(self, st: Stmt, table: SymbolTable, externals: set) -> None:
        if isinstance(st, Assign):
            st.target = self._resolve_expr(st.target, table, externals, is_target=True)
            st.expr = self._resolve_expr(st.expr, table, externals)
        elif isinstance(st, DoLoop):
            table.ensure(st.var, st.line)
            st.start = self._resolve_expr(st.start, table, externals)
            st.end = self._resolve_expr(st.end, table, externals)
            if st.step is not None:
                st.step = self._resolve_expr(st.step, table, externals)
        elif isinstance(st, If):
            st.arms = [
                (
                    self._resolve_expr(c, table, externals) if c is not None else None,
                    b,
                )
                for c, b in st.arms
            ]
        else:
            for attr in ("args", "spec", "items"):
                if hasattr(st, attr):
                    setattr(
                        st,
                        attr,
                        [
                            self._resolve_expr(e, table, externals)
                            for e in getattr(st, attr)
                        ],
                    )

    def _resolve_expr(
        self,
        expr: Expr,
        table: SymbolTable,
        externals: set,
        is_target: bool = False,
    ) -> Expr:
        if isinstance(expr, NameArgs):
            args = [self._resolve_expr(a, table, externals) for a in expr.args]
            sym = table.get(expr.name)
            if sym is not None and sym.is_array:
                if len(args) != sym.rank:
                    raise SemanticError(
                        f"array {expr.name!r} has rank {sym.rank}, "
                        f"referenced with {len(args)} subscripts",
                        expr.line,
                    )
                return ArrayRef(expr.line, expr.name, args)
            if is_target:
                # Assignment to an undeclared name(args): must be an array
                # the user forgot to declare — treat as semantic error.
                raise SemanticError(
                    f"assignment to undeclared array {expr.name!r}", expr.line
                )
            if expr.name in INTRINSICS and expr.name not in externals:
                return FuncRef(expr.line, expr.name, args, intrinsic=True)
            if (
                expr.name in externals
                or self.unit_kinds.get(expr.name) == "function"
                or (sym is not None and sym.storage == FUNC)
            ):
                fsym = table.ensure(expr.name, expr.line)
                fsym.storage = FUNC
                return FuncRef(expr.line, expr.name, args, intrinsic=False)
            # Unknown name(args): assume external function (F77 semantics).
            fsym = table.ensure(expr.name, expr.line)
            fsym.storage = FUNC
            return FuncRef(expr.line, expr.name, args, intrinsic=False)
        if isinstance(expr, VarRef):
            if expr.name != "*":
                table.ensure(expr.name, expr.line)
            return expr
        if isinstance(expr, BinOp):
            expr.left = self._resolve_expr(expr.left, table, externals)
            expr.right = self._resolve_expr(expr.right, table, externals)
            return expr
        if isinstance(expr, UnOp):
            expr.operand = self._resolve_expr(expr.operand, table, externals)
            return expr
        if isinstance(expr, ArrayRef):
            expr.subs = [self._resolve_expr(s, table, externals) for s in expr.subs]
            return expr
        if isinstance(expr, FuncRef):
            expr.args = [self._resolve_expr(a, table, externals) for a in expr.args]
            return expr
        return expr


def bind_source(sf: SourceFile) -> SourceFile:
    """Bind every unit of ``sf`` in place and return it."""

    return Binder(sf).bind()


def parse_and_bind(source: str) -> SourceFile:
    """Parse ``source`` and run the binder — the normal front-end entry."""

    from .parser import parse_source

    return bind_source(parse_source(source))


def rebind_unit(sf: SourceFile, unit: ProcedureUnit) -> None:
    """Re-run binding on a single unit (after an edit or transformation)."""

    Binder(sf).bind_unit(unit)


def int_const(expr: Expr, table: Optional[SymbolTable] = None) -> Optional[int]:
    """Evaluate ``expr`` to an integer constant if possible.

    Follows PARAMETER constants through ``table`` when provided.  Returns
    ``None`` when the expression is not a compile-time integer constant.
    """

    if isinstance(expr, Num) and isinstance(expr.value, int):
        return expr.value
    if isinstance(expr, UnOp) and expr.op == "-":
        inner = int_const(expr.operand, table)
        return -inner if inner is not None else None
    if isinstance(expr, BinOp):
        left = int_const(expr.left, table)
        right = int_const(expr.right, table)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return int(left / right) if right else None
        if expr.op == "**":
            return left**right if right >= 0 else None
        return None
    if isinstance(expr, VarRef) and table is not None:
        value = table.parameter_value(expr.name)
        if value is not None:
            return int_const(value, table)
    return None
