"""Simulated parallel execution.

Combines the reference profile (real trip counts) with the machine
model's fork/join cost to predict wall-clock time of a program whose
loops carry DOALL markings, for any processor count.  This substitutes
for the paper's Alliant/Y-MP runs: absolute numbers are model artefacts,
but the *shape* — which loops profit, where inner-loop parallelization
loses to fork/join overhead, how outer-loop parallelism scales — matches
the phenomena the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..fortran.ast_nodes import (
    Assign,
    CallStmt,
    DoLoop,
    If,
    IOStmt,
    ProcedureUnit,
    SourceFile,
    Stmt,
)
from .estimator import PerformanceEstimator
from .machine import MachineModel
from .profiler import ProgramProfile, profile_program


@dataclass
class SimulationResult:
    """Predicted times for one configuration."""

    sequential: float
    parallel: float
    n_procs: int

    @property
    def speedup(self) -> float:
        return self.sequential / self.parallel if self.parallel > 0 else 1.0


def simulate_speedup(
    sf: SourceFile,
    n_procs: int = 8,
    machine: Optional[MachineModel] = None,
    profile: Optional[ProgramProfile] = None,
    inputs: Optional[Sequence] = None,
) -> SimulationResult:
    """Predict sequential and parallel time of ``sf`` on ``n_procs``.

    Parallel loops (the ``parallel`` flag set by Ped's transformations)
    spread their iterations over the processors at the cost of one
    fork/join per entry; nested parallelism inside an already-parallel
    loop executes sequentially (single level of parallelism, as on the
    machines of the era).
    """

    import dataclasses

    machine = machine or MachineModel(n_procs=n_procs)
    if machine.n_procs != n_procs:
        machine = dataclasses.replace(machine, n_procs=n_procs)
    profile = profile or profile_program(sf, inputs=inputs)
    est = PerformanceEstimator(machine)
    sim = _Simulator(sf, est, profile, machine)
    main = next(u for u in sf.units if u.kind == "program")
    seq = sim.body_time(main.body, main, parallel_allowed=False)
    par = sim.body_time(main.body, main, parallel_allowed=True)
    return SimulationResult(seq, par, n_procs)


class _Simulator:
    def __init__(self, sf, est, profile, machine) -> None:
        self.sf = sf
        self.est = est
        self.profile = profile
        self.machine = machine
        self.units = {u.name: u for u in sf.units}

    def _trip(self, loop: DoLoop) -> float:
        counts = self.profile.stmt_counts
        entries = counts.get(id(loop), 0)
        iters = counts.get(id(loop.body[0]), 0) if loop.body else 0
        if entries:
            return iters / entries
        return self.machine.default_trip

    def body_time(
        self, body: List[Stmt], unit: ProcedureUnit, parallel_allowed: bool
    ) -> float:
        total = 0.0
        for st in body:
            total += self.stmt_time(st, unit, parallel_allowed)
        return total

    def stmt_time(
        self, st: Stmt, unit: ProcedureUnit, parallel_allowed: bool
    ) -> float:
        m = self.machine
        if isinstance(st, DoLoop):
            trip = self._trip(st)
            body = self.body_time(
                st.body, unit, parallel_allowed and not st.parallel
            )
            if st.parallel and parallel_allowed:
                return m.parallel_time(trip, body, len(st.reductions))
            return m.sequential_time(trip, body)
        if isinstance(st, If):
            cond = sum(
                self.est.expr_cost(c) for c, _ in st.arms if c is not None
            )
            arms = [
                self.body_time(b, unit, parallel_allowed) for _, b in st.arms
            ]
            avg = sum(arms) / len(arms) if arms else 0.0
            return m.branch + cond + avg
        if isinstance(st, CallStmt):
            callee = self.units.get(st.name)
            args = sum(self.est.expr_cost(a) for a in st.args)
            if callee is None:
                return m.call_overhead + args
            return (
                m.call_overhead
                + args
                + self.body_time(callee.body, callee, parallel_allowed)
            )
        if isinstance(st, IOStmt):
            return m.io_cost
        if isinstance(st, Assign):
            return self.est.stmt_cost(st)
        return 0.0


def speedup_curve(
    sf: SourceFile,
    procs: Sequence[int] = (1, 2, 4, 8, 16),
    machine: Optional[MachineModel] = None,
    inputs: Optional[Sequence] = None,
) -> List[Tuple[int, float]]:
    """Speedup at each processor count (shared profile, one interp run)."""

    profile = profile_program(sf, inputs=inputs)
    out: List[Tuple[int, float]] = []
    for p in procs:
        result = simulate_speedup(sf, p, machine, profile)
        out.append((p, result.speedup))
    return out
