"""Parametric machine model.

Abstract cycle costs calibrated to the flavour of machine the workshop
users ran on (8-processor Alliant FX/8, Cray Y-MP): cheap arithmetic,
costlier memory traffic, a noticeable procedure-call overhead and a large
parallel-loop fork/join cost — the constant that makes inner-loop
parallelism unprofitable and drives the paper's granularity discussion.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineModel:
    """Cycle costs for the static estimator and the simulator."""

    n_procs: int = 8
    flop: float = 1.0  # one arithmetic operation
    mem: float = 2.0  # one array element access
    scalar_access: float = 0.5
    intrinsic: float = 8.0  # sqrt/exp/…
    branch: float = 2.0  # IF evaluation overhead
    loop_overhead: float = 2.0  # per-iteration increment/test/branch
    call_overhead: float = 25.0  # procedure linkage
    io_cost: float = 500.0  # one I/O statement
    fork_join: float = 1000.0  # parallel loop startup + barrier
    reduction_combine: float = 20.0  # per-processor combine step
    default_trip: float = 100.0  # assumed trip count for unknown bounds

    def parallel_time(
        self, trip: float, body_cost: float, n_reductions: int = 0
    ) -> float:
        """Fork/join model: ceil-divided iterations plus fixed overheads."""

        procs = max(1, self.n_procs)
        chunks = max(1.0, trip / procs)
        time = self.fork_join + chunks * (body_cost + self.loop_overhead)
        if n_reductions:
            time += n_reductions * self.reduction_combine * procs
        return time

    def sequential_time(self, trip: float, body_cost: float) -> float:
        return trip * (body_cost + self.loop_overhead)
