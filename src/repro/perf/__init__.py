"""Performance estimation: machine model, static estimator, reference
interpreter, profiler and parallel-execution simulator."""

from .machine import MachineModel  # noqa: F401
from .estimator import CostEstimate, PerformanceEstimator  # noqa: F401
from .interp import Interpreter, InterpError  # noqa: F401
from .profiler import LoopProfile, profile_program  # noqa: F401
from .simulate import SimulationResult, simulate_speedup  # noqa: F401
