"""Static performance estimation (Kennedy–McIntosh–McKinley).

"ParaScope now includes a static performance estimator used to predict
the relative execution time of loops and subroutines in parallel
programs."  The estimator assigns cycle costs to statements bottom-up:
expression costs from the machine model, loop costs as trip × body (trip
from constant propagation, assertions, or the model's default), call
costs from callee estimates over the call graph, IF costs as the
arm average.  It answers two questions for the editor:

* *Where should I look next?* — loops ranked by estimated total time;
* *Is this parallelization profitable?* — sequential vs parallel time of
  one loop under the fork/join model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis.symbolic import linear_of_expr
from ..dependence.driver import UnitAnalysis
from ..fortran.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    DoLoop,
    Expr,
    FuncRef,
    If,
    IOStmt,
    Stmt,
    UnOp,
    VarRef,
)
from .machine import MachineModel


@dataclass
class CostEstimate:
    """Estimated cycles for one construct (sequential and parallel)."""

    sequential: float
    parallel: float
    trip: float = 0.0

    @property
    def speedup(self) -> float:
        return self.sequential / self.parallel if self.parallel > 0 else 1.0


@dataclass
class PerformanceEstimator:
    """Per-program estimator; procedure costs resolve through the call
    graph (unknown callees cost one ``call_overhead``)."""

    machine: MachineModel = field(default_factory=MachineModel)
    unit_costs: Dict[str, float] = field(default_factory=dict)

    # -- expressions ---------------------------------------------------------

    def expr_cost(self, expr: Expr) -> float:
        m = self.machine
        if isinstance(expr, (VarRef,)):
            return m.scalar_access
        if isinstance(expr, ArrayRef):
            return m.mem + sum(self.expr_cost(s) for s in expr.subs)
        if isinstance(expr, FuncRef):
            args = sum(self.expr_cost(a) for a in expr.args)
            if expr.intrinsic:
                return m.intrinsic + args
            return self.unit_costs.get(expr.name, m.call_overhead) + args
        if isinstance(expr, BinOp):
            return m.flop + self.expr_cost(expr.left) + self.expr_cost(expr.right)
        if isinstance(expr, UnOp):
            return m.flop + self.expr_cost(expr.operand)
        return 0.0

    # -- statements ------------------------------------------------------------

    def trip_count(
        self, loop: DoLoop, analysis: Optional[UnitAnalysis] = None
    ) -> float:
        table = analysis.unit.symtab if analysis is not None else None
        env = (
            analysis.constants.linear_env(loop.sid)
            if analysis is not None and loop.sid >= 0
            else None
        )
        diff = (
            linear_of_expr(loop.end, table, env)
            - linear_of_expr(loop.start, table, env)
        ).constant_value()
        step = 1.0
        if loop.step is not None:
            s = linear_of_expr(loop.step, table, env).constant_value()
            if s is not None and s != 0:
                step = abs(float(s))
        if diff is None:
            return self.machine.default_trip
        return max(0.0, (float(diff) + step) / step)

    def stmt_cost(
        self, st: Stmt, analysis: Optional[UnitAnalysis] = None
    ) -> float:
        m = self.machine
        if isinstance(st, Assign):
            target_cost = (
                m.mem + sum(self.expr_cost(s) for s in st.target.subs)
                if isinstance(st.target, ArrayRef)
                else m.scalar_access
            )
            return target_cost + self.expr_cost(st.expr)
        if isinstance(st, DoLoop):
            return self.loop_estimate(st, analysis).sequential
        if isinstance(st, If):
            cond_cost = sum(
                self.expr_cost(c) for c, _ in st.arms if c is not None
            )
            arm_costs = [
                sum(self.stmt_cost(s, analysis) for s in body)
                for _, body in st.arms
            ]
            avg = sum(arm_costs) / len(arm_costs) if arm_costs else 0.0
            return m.branch + cond_cost + avg
        if isinstance(st, CallStmt):
            args = sum(self.expr_cost(a) for a in st.args)
            return self.unit_costs.get(st.name, m.call_overhead) + args
        if isinstance(st, IOStmt):
            return m.io_cost
        return 0.0

    def body_cost(
        self, body: List[Stmt], analysis: Optional[UnitAnalysis] = None
    ) -> float:
        return sum(self.stmt_cost(st, analysis) for st in body)

    def loop_estimate(
        self, loop: DoLoop, analysis: Optional[UnitAnalysis] = None
    ) -> CostEstimate:
        """Sequential and would-be-parallel cost of one loop."""

        trip = self.trip_count(loop, analysis)
        body = self.body_cost(loop.body, analysis)
        seq = self.machine.sequential_time(trip, body)
        par = self.machine.parallel_time(trip, body, len(loop.reductions))
        return CostEstimate(seq, par, trip)

    # -- procedures -------------------------------------------------------------

    def compute_unit_costs(self, program) -> Dict[str, float]:
        """Bottom-up procedure cost estimates over a ProgramAnalysis."""

        for scc in program.callgraph.sccs_bottom_up():
            for _ in range(3):  # fixpoint-ish for recursion
                for name in scc:
                    analysis = program.units.get(name)
                    unit = program.callgraph.units[name]
                    self.unit_costs[name] = self.body_cost(unit.body, analysis)
        return self.unit_costs

    def rank_loops(
        self, analysis: UnitAnalysis
    ) -> List[Tuple[float, "object"]]:
        """Loops of one procedure, costliest first: the navigation order.

        Returns ``(estimated_cycles, LoopNest)`` pairs.  Only outermost
        loops of each nest chain appear with their full nest cost; inner
        loops are listed too (their own cost) so the user can drill down.
        """

        ranked = []
        for nest in analysis.loops:
            est = self.loop_estimate(nest.loop, analysis)
            ranked.append((est.sequential, nest))
        ranked.sort(key=lambda pair: -pair[0])
        return ranked
