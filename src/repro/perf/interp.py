"""Reference interpreter for the Fortran subset.

Executes a bound :class:`SourceFile` directly on the AST.  It exists for
three jobs:

* **semantics ground truth** — property tests run a program before and
  after a transformation and require identical results;
* **DOALL validation** — loops marked parallel can be executed in
  *reversed or shuffled iteration order* (``doall_order``); a correct
  parallelization must produce identical results, which turns the
  dependence analyzer's safety claims into executable checks;
* **profiling substrate** — the profiler counts statement/loop executions
  during a run (the gprof/Forge replacement of the substitution table).

Fortran semantics modelled: column-major arrays, by-reference argument
passing (including array-element actuals aliasing a column), COMMON
storage shared by block name and member position, integer division
truncating toward zero, DO trip count ``max(0, (end−start+step)/step)``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..fortran.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    ContinueStmt,
    DataDecl,
    DoLoop,
    Expr,
    FuncRef,
    GotoStmt,
    If,
    IOStmt,
    LogicalLit,
    Num,
    ProcedureUnit,
    ReturnStmt,
    SourceFile,
    Stmt,
    StopStmt,
    Str,
    UnOp,
    VarRef,
)
from ..fortran.symbols import FORMAL, PARAM, SymbolTable, int_const

Value = Union[int, float, bool, str]


class InterpError(Exception):
    """Raised for unsupported constructs or runtime errors."""


class _Return(Exception):
    pass


class _Stop(Exception):
    pass


class _Goto(Exception):
    def __init__(self, label: int) -> None:
        self.label = label


class Cell:
    """A mutable scalar location (models by-reference passing)."""

    __slots__ = ("value",)

    def __init__(self, value: Value = 0) -> None:
        self.value = value


class FortranArray:
    """Column-major array with declared bounds per dimension."""

    __slots__ = ("lows", "sizes", "data", "name")

    def __init__(self, bounds: Sequence[Tuple[int, int]], name: str = "") -> None:
        self.lows = [lo for lo, _ in bounds]
        self.sizes = [hi - lo + 1 for lo, hi in bounds]
        total = 1
        for s in self.sizes:
            if s < 0:
                raise InterpError(f"negative extent in array {name}")
            total *= s
        self.data: List[Value] = [0.0] * total
        self.name = name

    def flat(self, subs: Sequence[int]) -> int:
        if len(subs) != len(self.sizes):
            raise InterpError(
                f"array {self.name}: rank {len(self.sizes)} accessed with "
                f"{len(subs)} subscripts"
            )
        offset = 0
        stride = 1
        for k, sub in enumerate(subs):
            idx = sub - self.lows[k]
            if idx < 0 or idx >= self.sizes[k]:
                raise InterpError(
                    f"array {self.name}: subscript {sub} out of bounds in "
                    f"dimension {k + 1} [{self.lows[k]}, "
                    f"{self.lows[k] + self.sizes[k] - 1}]"
                )
            offset += idx * stride
            stride *= self.sizes[k]
        return offset

    def get(self, subs: Sequence[int]) -> Value:
        return self.data[self.flat(subs)]

    def set(self, subs: Sequence[int], value: Value) -> None:
        self.data[self.flat(subs)] = value


class ArrayView:
    """A lower-rank window into another array (array-element actual)."""

    __slots__ = ("base", "offset", "lows", "sizes", "name")

    def __init__(
        self,
        base: "FortranArray",
        offset: int,
        bounds: Sequence[Tuple[int, int]],
        name: str = "",
    ) -> None:
        self.base = base
        self.offset = offset
        self.lows = [lo for lo, _ in bounds]
        self.sizes = [hi - lo + 1 for lo, hi in bounds]
        self.name = name

    def flat(self, subs: Sequence[int]) -> int:
        offset = self.offset
        stride = 1
        for k, sub in enumerate(subs):
            idx = sub - self.lows[k]
            if idx < 0 or idx >= self.sizes[k]:
                raise InterpError(
                    f"view {self.name}: subscript {sub} out of bounds"
                )
            offset += idx * stride
            stride *= self.sizes[k]
        if offset >= len(self.base.data):
            raise InterpError(f"view {self.name}: exceeds base array")
        return offset

    def get(self, subs: Sequence[int]) -> Value:
        return self.base.data[self.flat(subs)]

    def set(self, subs: Sequence[int], value: Value) -> None:
        self.base.data[self.flat(subs)] = value


ArrayLike = Union[FortranArray, ArrayView]


@dataclass
class Frame:
    unit: ProcedureUnit
    scalars: Dict[str, Cell] = field(default_factory=dict)
    arrays: Dict[str, ArrayLike] = field(default_factory=dict)


_INTRINSICS: Dict[str, Callable] = {
    "abs": abs, "iabs": abs, "dabs": abs,
    "sqrt": math.sqrt, "dsqrt": math.sqrt,
    "exp": math.exp, "dexp": math.exp,
    "log": math.log, "alog": math.log, "dlog": math.log,
    "log10": math.log10, "alog10": math.log10,
    "sin": math.sin, "cos": math.cos, "tan": math.tan,
    "asin": math.asin, "acos": math.acos, "atan": math.atan,
    "atan2": math.atan2, "sinh": math.sinh, "cosh": math.cosh,
    "tanh": math.tanh,
    "max": max, "amax1": max, "max0": max, "dmax1": max,
    "min": min, "amin1": min, "min0": min, "dmin1": min,
    "int": int, "ifix": int, "idint": int,
    "nint": lambda x: int(round(x)),
    "float": float, "real": float, "dble": float, "sngl": float,
    "mod": lambda a, b: a - b * int(a / b) if isinstance(a, int) and isinstance(b, int) else math.fmod(a, b),
    "amod": math.fmod, "dmod": math.fmod,
    "sign": lambda a, b: abs(a) if b >= 0 else -abs(a),
    "isign": lambda a, b: abs(a) if b >= 0 else -abs(a),
    "dim": lambda a, b: max(a - b, 0),
}


class Interpreter:
    """Execute a bound SourceFile.

    Parameters
    ----------
    sf:
        The bound program (main program unit required to ``run()``).
    inputs:
        Values consumed by READ statements, in order.
    doall_order:
        ``"forward"`` (default), ``"reversed"`` or ``"shuffled"`` —
        iteration order for loops whose ``parallel`` flag is set.  A valid
        DOALL must give identical results under every order.
    max_steps:
        Execution budget (statement executions) to bound runaway loops.
    """

    def __init__(
        self,
        sf: SourceFile,
        inputs: Optional[Sequence[Value]] = None,
        doall_order: str = "forward",
        max_steps: int = 5_000_000,
        on_stmt: Optional[Callable[[Stmt], None]] = None,
    ) -> None:
        self.sf = sf
        self.inputs = deque(inputs or [])
        self.doall_order = doall_order
        self.max_steps = max_steps
        self.steps = 0
        self.output: List[str] = []
        self.commons: Dict[str, List[object]] = {}
        self.on_stmt = on_stmt
        self._rng_state = 0x9E3779B9

    # -- public API ------------------------------------------------------------

    def run(self) -> List[str]:
        """Execute the main program; returns the collected output lines."""

        main = None
        for unit in self.sf.units:
            if unit.kind == "program":
                main = unit
                break
        if main is None:
            raise InterpError("no PROGRAM unit to run")
        frame = self._make_frame(main, [])
        try:
            self._exec_body(main.body, frame)
        except (_Return, _Stop):
            pass
        return self.output

    def snapshot(self) -> Dict[str, List[Value]]:
        """COMMON-block contents after a run (for result comparison)."""

        out: Dict[str, List[Value]] = {}
        for block, slots in self.commons.items():
            values: List[Value] = []
            for slot in slots:
                if isinstance(slot, Cell):
                    values.append(slot.value)
                else:
                    values.extend(slot.data)  # type: ignore[union-attr]
            out[block] = values
        return out

    # -- frames ---------------------------------------------------------------

    def _dim_bounds(
        self, sym, table: SymbolTable, frame: Optional[Frame]
    ) -> List[Tuple[int, int]]:
        bounds: List[Tuple[int, int]] = []
        for lo_e, hi_e in sym.dims or []:
            lo = 1 if lo_e is None else self._const_or_eval(lo_e, table, frame)
            if isinstance(hi_e, VarRef) and hi_e.name == "*":
                hi = lo + 10_000 - 1  # assumed-size: generous window
            else:
                hi = self._const_or_eval(hi_e, table, frame)
            bounds.append((int(lo), int(hi)))
        return bounds

    def _const_or_eval(self, expr: Expr, table: SymbolTable, frame) -> int:
        value = int_const(expr, table)
        if value is not None:
            return value
        if frame is None:
            raise InterpError("non-constant bound outside a frame")
        got = self._eval(expr, frame)
        return int(got)

    def _make_frame(self, unit: ProcedureUnit, actuals: List[object]) -> Frame:
        table: SymbolTable = unit.symtab  # type: ignore[assignment]
        frame = Frame(unit)
        # Bind formals first (arrays may use formal scalars in bounds).
        for idx, formal in enumerate(unit.formals):
            if idx >= len(actuals):
                raise InterpError(
                    f"{unit.name}: expected {len(unit.formals)} args, got "
                    f"{len(actuals)}"
                )
            actual = actuals[idx]
            sym = table.get(formal)
            if sym is not None and sym.is_array:
                if isinstance(actual, Cell):
                    raise InterpError(
                        f"{unit.name}: scalar passed for array formal {formal}"
                    )
                # Re-window the incoming array to the formal's declared
                # shape (adjustable dimensions use formal scalars, so this
                # happens after scalars bind — do a second pass below).
                frame.arrays[formal] = actual  # placeholder
            else:
                if not isinstance(actual, Cell):
                    raise InterpError(
                        f"{unit.name}: array passed for scalar formal {formal}"
                    )
                frame.scalars[formal] = actual
        # COMMON storage.
        for block, members in table.common_blocks.items():
            slots = self.commons.get(block)
            if slots is None:
                slots = []
                for m in members:
                    msym = table[m]
                    if msym.is_array:
                        slots.append(
                            FortranArray(self._dim_bounds(msym, table, frame), m)
                        )
                    else:
                        slots.append(Cell(self._default_value(msym)))
                self.commons[block] = slots
            for pos, m in enumerate(members):
                if pos >= len(slots):
                    raise InterpError(f"common /{block}/ layout mismatch")
                slot = slots[pos]
                msym = table[m]
                if msym.is_array:
                    if isinstance(slot, Cell):
                        raise InterpError(f"common /{block}/ member kind mismatch")
                    frame.arrays[m] = slot
                else:
                    if not isinstance(slot, Cell):
                        raise InterpError(f"common /{block}/ member kind mismatch")
                    frame.scalars[m] = slot
        # Locals (and re-window array formals with adjustable bounds).
        for name, sym in table.symbols.items():
            if name in frame.scalars or name in frame.arrays:
                if (
                    name in frame.arrays
                    and sym.storage == FORMAL
                    and sym.is_array
                ):
                    base = frame.arrays[name]
                    bounds = self._dim_bounds(sym, table, frame)
                    if isinstance(base, FortranArray):
                        frame.arrays[name] = ArrayView(base, 0, bounds, name)
                    else:
                        frame.arrays[name] = ArrayView(
                            base.base, base.offset, bounds, name
                        )
                continue
            if sym.storage == PARAM:
                value = int_const(sym.const_value, table) if sym.const_value else None
                if value is None and sym.const_value is not None:
                    value = self._eval_const_expr(sym.const_value, table)
                frame.scalars[name] = Cell(value if value is not None else 0)
            elif sym.is_array:
                frame.arrays[name] = FortranArray(
                    self._dim_bounds(sym, table, frame), name
                )
            elif sym.storage != "function":
                frame.scalars[name] = Cell(self._default_value(sym))
        # DATA initialisation.
        for decl in unit.decls:
            if isinstance(decl, DataDecl):
                for name, value_expr in decl.items:
                    value = self._eval(value_expr, frame)
                    if name in frame.scalars:
                        frame.scalars[name].value = value
        # Function result cell.
        if unit.kind == "function" and unit.name not in frame.scalars:
            frame.scalars[unit.name] = Cell(0.0)
        return frame

    def _default_value(self, sym) -> Value:
        return 0 if sym.typename == "integer" else (
            False if sym.typename == "logical" else 0.0
        )

    def _eval_const_expr(self, expr: Expr, table: SymbolTable) -> Value:
        from ..analysis.constants import eval_const

        env = {}
        for name, sym in table.symbols.items():
            if sym.storage == PARAM and sym.const_value is not None:
                v = eval_const(sym.const_value, env)
                if v is not None:
                    env[name] = v
        got = eval_const(expr, env)
        if got is None:
            raise InterpError("PARAMETER value not constant")
        return got

    # -- execution ----------------------------------------------------------

    def _tick(self, st: Stmt) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpError("execution budget exceeded")
        if self.on_stmt is not None:
            self.on_stmt(st)

    def _exec_body(self, body: List[Stmt], frame: Frame) -> None:
        labels = {st.label: i for i, st in enumerate(body) if st.label is not None}
        i = 0
        while i < len(body):
            st = body[i]
            try:
                self._exec_stmt(st, frame)
            except _Goto as g:
                if g.label in labels:
                    i = labels[g.label]
                    continue
                raise
            i += 1

    def _exec_stmt(self, st: Stmt, frame: Frame) -> None:
        self._tick(st)
        if isinstance(st, Assign):
            value = self._eval(st.expr, frame)
            self._store(st.target, value, frame)
        elif isinstance(st, DoLoop):
            self._exec_do(st, frame)
        elif isinstance(st, If):
            for cond, arm in st.arms:
                if cond is None or _truthy(self._eval(cond, frame)):
                    self._exec_body(arm, frame)
                    return
        elif isinstance(st, CallStmt):
            self._call(st.name, st.args, frame)
        elif isinstance(st, ReturnStmt):
            raise _Return()
        elif isinstance(st, StopStmt):
            raise _Stop()
        elif isinstance(st, ContinueStmt):
            pass
        elif isinstance(st, GotoStmt):
            raise _Goto(st.target)
        elif isinstance(st, IOStmt):
            self._exec_io(st, frame)
        else:
            raise InterpError(f"cannot execute {type(st).__name__}")

    def _iter_space(self, st: DoLoop, frame: Frame) -> List[int]:
        start = self._as_int(self._eval(st.start, frame))
        end = self._as_int(self._eval(st.end, frame))
        step = (
            self._as_int(self._eval(st.step, frame)) if st.step is not None else 1
        )
        if step == 0:
            raise InterpError("zero DO step")
        # Fortran trip count: max(0, (end − start + step) / step).
        trip = max(0, (end - start + step) // step)
        return [start + k * step for k in range(trip)]

    def _exec_do(self, st: DoLoop, frame: Frame) -> None:
        values = self._iter_space(st, frame)
        if st.parallel and self.doall_order != "forward":
            if self.doall_order == "reversed":
                values = list(reversed(values))
            elif self.doall_order == "shuffled":
                values = self._shuffle(values)
            else:
                raise InterpError(f"unknown doall_order {self.doall_order!r}")
        var_cell = frame.scalars.setdefault(st.var, Cell(0))
        for v in values:
            var_cell.value = v
            self._exec_body(st.body, frame)
        # After a completed Fortran DO, the variable holds the first
        # out-of-range value.
        if values:
            step = values[1] - values[0] if len(values) > 1 else (
                self._as_int(self._eval(st.step, frame)) if st.step is not None else 1
            )
            var_cell.value = values[-1] + step

    def _shuffle(self, values: List[int]) -> List[int]:
        # Deterministic xorshift shuffle: reproducible without random().
        out = list(values)
        state = self._rng_state
        for i in range(len(out) - 1, 0, -1):
            state ^= (state << 13) & 0xFFFFFFFF
            state ^= state >> 17
            state ^= (state << 5) & 0xFFFFFFFF
            j = state % (i + 1)
            out[i], out[j] = out[j], out[i]
        self._rng_state = state or 0x9E3779B9
        return out

    def _exec_io(self, st: IOStmt, frame: Frame) -> None:
        if st.kind == "read":
            for item in st.items:
                if not self.inputs:
                    raise InterpError("READ with no remaining input")
                value = self.inputs.popleft()
                self._store(item, value, frame)
            return
        parts = []
        for item in st.items:
            value = self._eval(item, frame)
            parts.append(_format_value(value))
        self.output.append(" ".join(parts))

    # -- calls -------------------------------------------------------------------

    def _unit_named(self, name: str) -> Optional[ProcedureUnit]:
        for unit in self.sf.units:
            if unit.name == name:
                return unit
        return None

    def _call(self, name: str, args: List[Expr], frame: Frame) -> Optional[Value]:
        unit = self._unit_named(name)
        if unit is None:
            raise InterpError(f"call to unknown procedure {name!r}")
        actuals = [self._prepare_actual(arg, frame) for arg in args]
        callee_frame = self._make_frame(unit, actuals)
        try:
            self._exec_body(unit.body, callee_frame)
        except _Return:
            pass
        if unit.kind == "function":
            return callee_frame.scalars[unit.name].value
        return None

    def _prepare_actual(self, arg: Expr, frame: Frame) -> object:
        if isinstance(arg, VarRef):
            if arg.name in frame.arrays:
                return frame.arrays[arg.name]
            if arg.name in frame.scalars:
                return frame.scalars[arg.name]
            cell = Cell(0.0)
            frame.scalars[arg.name] = cell
            return cell
        if isinstance(arg, ArrayRef):
            base = frame.arrays.get(arg.name)
            if base is None:
                raise InterpError(f"unknown array {arg.name!r}")
            subs = [self._as_int(self._eval(s, frame)) for s in arg.subs]
            offset = base.flat(subs)
            if isinstance(base, ArrayView):
                return ArrayView(base.base, offset, [(1, 10_000)], arg.name)
            return ArrayView(base, offset, [(1, 10_000)], arg.name)
        # Expression actual: copy-in only.
        return Cell(self._eval(arg, frame))

    # -- evaluation -----------------------------------------------------------

    def _as_int(self, value: Value) -> int:
        if isinstance(value, bool):
            raise InterpError("logical used as subscript")
        return int(value)

    def _store(self, target: Expr, value: Value, frame: Frame) -> None:
        if isinstance(target, VarRef):
            cell = frame.scalars.get(target.name)
            if cell is None:
                cell = Cell(0.0)
                frame.scalars[target.name] = cell
            sym = frame.unit.symtab.get(target.name)  # type: ignore[union-attr]
            if sym is not None and sym.typename == "integer" and not isinstance(value, bool):
                value = int(value)
            cell.value = value
            return
        if isinstance(target, ArrayRef):
            arr = frame.arrays.get(target.name)
            if arr is None:
                raise InterpError(f"unknown array {target.name!r}")
            subs = [self._as_int(self._eval(s, frame)) for s in target.subs]
            sym = frame.unit.symtab.get(target.name)  # type: ignore[union-attr]
            if sym is not None and sym.typename == "integer" and not isinstance(value, bool):
                value = int(value)
            arr.set(subs, value)
            return
        raise InterpError(f"cannot assign to {type(target).__name__}")

    def _eval(self, expr: Expr, frame: Frame) -> Value:
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, Str):
            return expr.value
        if isinstance(expr, LogicalLit):
            return expr.value
        if isinstance(expr, VarRef):
            cell = frame.scalars.get(expr.name)
            if cell is None:
                raise InterpError(f"uninitialised name {expr.name!r}")
            return cell.value
        if isinstance(expr, ArrayRef):
            arr = frame.arrays.get(expr.name)
            if arr is None:
                raise InterpError(f"unknown array {expr.name!r}")
            subs = [self._as_int(self._eval(s, frame)) for s in expr.subs]
            return arr.get(subs)
        if isinstance(expr, FuncRef):
            if expr.intrinsic:
                fn = _INTRINSICS.get(expr.name)
                if fn is None:
                    raise InterpError(f"unsupported intrinsic {expr.name!r}")
                args = [self._eval(a, frame) for a in expr.args]
                try:
                    return fn(*args)
                except ValueError as exc:
                    raise InterpError(f"intrinsic {expr.name}: {exc}") from exc
            result = self._call(expr.name, expr.args, frame)
            if result is None:
                raise InterpError(f"{expr.name} is not a function")
            return result
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand, frame)
            if expr.op == "-":
                return -value
            if expr.op == "+":
                return value
            if expr.op == ".not.":
                return not value
            raise InterpError(f"unsupported unary {expr.op!r}")
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, frame)
            op = expr.op
            if op == ".and.":
                return bool(left) and bool(self._eval(expr.right, frame))
            if op == ".or.":
                return bool(left) or bool(self._eval(expr.right, frame))
            right = self._eval(expr.right, frame)
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    raise InterpError("division by zero")
                if isinstance(left, int) and isinstance(right, int):
                    return int(left / right)
                return left / right
            if op == "**":
                return left**right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            if op == "==":
                return left == right
            if op == "/=":
                return left != right
            if op == ".eqv.":
                return bool(left) == bool(right)
            if op == ".neqv.":
                return bool(left) != bool(right)
            if op == "//":
                return str(left) + str(right)
            raise InterpError(f"unsupported operator {op!r}")
        raise InterpError(f"cannot evaluate {type(expr).__name__}")


def _truthy(value: Value) -> bool:
    return bool(value)


def _format_value(value: Value) -> str:
    if isinstance(value, bool):
        return "T" if value else "F"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
