"""Interpreter-based profiling.

The workshop users relied on gprof and Forge's loop-level profiles to
decide where to spend their effort; this module supplies the equivalent
signal: execute the program in the reference interpreter counting how
often each statement runs, then aggregate per loop and per procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..fortran.ast_nodes import DoLoop, ProcedureUnit, SourceFile, Stmt, walk_statements
from .interp import Interpreter, Value


@dataclass
class LoopProfile:
    """Execution counts for one loop."""

    unit: str
    line: int
    var: str
    entries: int = 0  # how many times the loop started
    iterations: int = 0  # total body executions

    @property
    def avg_trip(self) -> float:
        return self.iterations / self.entries if self.entries else 0.0


@dataclass
class ProgramProfile:
    """Whole-program profile: per-statement, per-loop, per-unit counts."""

    stmt_counts: Dict[int, int] = field(default_factory=dict)  # by id(stmt)
    loops: List[LoopProfile] = field(default_factory=list)
    unit_counts: Dict[str, int] = field(default_factory=dict)
    total_steps: int = 0

    def hottest_loops(self, limit: int = 10) -> List[LoopProfile]:
        return sorted(self.loops, key=lambda lp: -lp.iterations)[:limit]


def profile_program(
    sf: SourceFile,
    inputs: Optional[Sequence[Value]] = None,
    max_steps: int = 5_000_000,
) -> ProgramProfile:
    """Run the program once, collecting execution counts."""

    profile = ProgramProfile()
    counts: Dict[int, int] = {}

    # Map statements to loops/units for aggregation.
    stmt_unit: Dict[int, str] = {}
    loop_of_stmt: Dict[int, List[DoLoop]] = {}
    loop_records: Dict[int, LoopProfile] = {}

    for unit in sf.units:
        for st in walk_statements(unit.body):
            stmt_unit[id(st)] = unit.name
        for nest_loop in _loops_of(unit):
            loop_records[id(nest_loop)] = LoopProfile(
                unit.name, nest_loop.line, nest_loop.var
            )
            for st in nest_loop.body:
                for inner in walk_statements([st]):
                    loop_of_stmt.setdefault(id(inner), []).append(nest_loop)

    def on_stmt(st: Stmt) -> None:
        counts[id(st)] = counts.get(id(st), 0) + 1

    interp = Interpreter(sf, inputs=inputs, max_steps=max_steps, on_stmt=on_stmt)
    interp.run()

    profile.stmt_counts = counts
    profile.total_steps = interp.steps
    for unit in sf.units:
        total = 0
        for st in walk_statements(unit.body):
            total += counts.get(id(st), 0)
        profile.unit_counts[unit.name] = total
        for loop in _loops_of(unit):
            record = loop_records[id(loop)]
            record.entries = counts.get(id(loop), 0)
            direct = 0
            for st in loop.body:
                direct += counts.get(id(st), 0)
            # Body executions of the first body statement = iterations.
            if loop.body:
                record.iterations = counts.get(id(loop.body[0]), 0)
            else:
                record.iterations = 0
            profile.loops.append(record)
    return profile


def _loops_of(unit: ProcedureUnit) -> List[DoLoop]:
    return [st for st in walk_statements(unit.body) if isinstance(st, DoLoop)]
