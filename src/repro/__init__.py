"""repro — a Python reproduction of the ParaScope Editor (Ped).

The ParaScope Editor (Supercomputing '89; evaluated in "Experiences Using
the ParaScope Editor") is an interactive parallel-programming tool for
Fortran: sophisticated dependence analysis, power-steered program
transformations, and an editor that keeps the analyses current.

Quick start::

    from repro.core import open_session
    session = open_session(fortran_text)
    session.select_loop(0)
    print(session.diagnose("parallelize").describe())
    session.apply("parallelize")
    print(session.source)

Packages
--------
``repro.fortran``     Fortran 77 subset front end
``repro.analysis``    scalar data-flow analyses
``repro.dependence``  dependence testing and the dependence graph
``repro.interproc``   call graph, MOD/REF, sections, constants, kill
``repro.assertions``  user assertion facility
``repro.transform``   power-steered transformations
``repro.editor``      the Ped session, panes, filters, display, commands
``repro.perf``        estimator, interpreter, profiler, simulator
``repro.workloads``   the synthetic evaluation suite (Table 1)
``repro.evaluation``  table/figure regeneration harness
"""

__version__ = "1.0.0"

from .core.api import analyze, open_session, parallelize_program, parse  # noqa: F401
