"""Compare fresh benchmark artifacts against committed perf baselines.

Run after the benchmark suite has filled ``benchmarks/out/``::

    python benchmarks/compare_baselines.py

Reads ``benchmarks/baselines.json`` and fails (exit 1) when any gated
metric regresses by more than ``TOLERANCE`` against its committed
baseline.  Every gated metric is a same-machine ratio (speedup factors,
byte ratios, overhead ratios) so the gate holds across CI runner
hardware; absolute seconds live in the artifacts for humans but are
never gated.  A missing artifact is an error too — silently skipping a
metric would turn the gate into decoration.
"""

import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
OUT = HERE / "out"
TOLERANCE = 0.25


def _dig(blob, path):
    for key in path:
        blob = blob[key]
    return float(blob)


def main() -> int:
    spec = json.loads((HERE / "baselines.json").read_text())
    failures = []
    rows = []
    for name, m in spec["metrics"].items():
        artifact = OUT / m["artifact"]
        if not artifact.exists():
            failures.append(f"{name}: missing artifact {artifact.name}")
            continue
        blob = json.loads(artifact.read_text())
        try:
            value = _dig(blob, m["path"])
            if "divide_by" in m:
                value /= _dig(blob, m["divide_by"])
        except (KeyError, IndexError, TypeError) as exc:
            failures.append(f"{name}: bad path in {artifact.name}: {exc!r}")
            continue
        baseline = float(m["baseline"])
        if m["direction"] == "higher":
            floor = baseline * (1.0 - TOLERANCE)
            ok = value >= floor
            bound = f">= {floor:.3f}"
        else:
            ceiling = baseline * (1.0 + TOLERANCE)
            ok = value <= ceiling
            bound = f"<= {ceiling:.3f}"
        rows.append(
            f"{'ok  ' if ok else 'FAIL'} {name}: {value:.3f} "
            f"(baseline {baseline:.3f}, gate {bound})"
        )
        if not ok:
            failures.append(
                f"{name}: {value:.3f} regressed past {bound} "
                f"(baseline {baseline:.3f})"
            )
    print("\n".join(rows))
    if failures:
        print("\nperf regression gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} gated metrics within {TOLERANCE:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
