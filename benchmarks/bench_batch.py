"""Experiment M7 — batched dependence testing and the binary wire format.

Two performance claims from this PR, measured end to end and recorded
into ``benchmarks/out/batchtest.json``:

1. *Batched tier execution* — collecting the surviving pairs of a loop
   nest into a columnar batch and sweeping the test hierarchy tier by
   tier beats the scalar one-``test_pair``-at-a-time walk.  The bench
   times scalar vs batched per size tier (10..80 routines) in both
   memo modes:

   - **cold** (pair memo off): every pair reaches the tier sweeps —
     this is the first-open path an interactive session pays, and the
     configuration where batching is the operative optimization.  The
     acceptance gate (>= 3x end to end on the 40-routine suite against
     the scalar tester) is asserted here.
   - **warm** (pair memo + shared store on, the production default):
     most pairs replay from the memo, so the batch win is smaller; the
     numbers are recorded alongside so the artifact shows both.

   Fingerprints must be byte-identical scalar vs batched at every size
   in every mode, and the batched engine must stay byte-identical to
   itself across execution modes: serial, ``--jobs 2`` worker pool,
   and a 2-shard consistent-hash fleet.  M1 tier statistics must be
   bit-identical with and without the memo.

2. *Binary delta frames* — a streamed edit session over the
   length-prefixed binary frame protocol with pane deltas transfers
   fewer bytes than the same session over JSON lines.
"""

import json
import threading
import time
from dataclasses import asdict

import pytest

from repro.dependence import driver
from repro.evaluation.hierarchy_stats import dependence_test_stats
from repro.fleet import AsyncTransport, FleetRouter
from repro.fortran import parse_and_bind
from repro.incremental import AnalysisEngine, program_fingerprint
from repro.incremental.stats import EngineStats
from repro.interproc import FeatureSet, analyze_program
from repro.pipeline import CorpusRunner
from repro.service import PedClient, PedServer, WorkerPool, serve_tcp
from repro.workloads.generator import generate_program

from conftest import OUT_DIR, save_artifact

SIZES = (10, 20, 40, 80)
ACCEPT_SIZE = 40
ROUNDS = 3


def _merge_artifact(section: str, payload) -> None:
    out = {}
    path = OUT_DIR / "batchtest.json"
    if path.exists():
        try:
            out = json.loads(path.read_text())
        except ValueError:
            out = {}
    out[section] = payload
    save_artifact("batchtest.json", json.dumps(out, indent=2) + "\n")


def _with_hot_path(batch, memo, share, fn):
    saved = (
        driver.HOT_PATH.batch_pairs,
        driver.HOT_PATH.memoize_pairs,
        driver.HOT_PATH.share_pairs,
    )
    driver.HOT_PATH.batch_pairs = batch
    driver.HOT_PATH.memoize_pairs = memo
    driver.HOT_PATH.share_pairs = share
    try:
        return fn()
    finally:
        (
            driver.HOT_PATH.batch_pairs,
            driver.HOT_PATH.memoize_pairs,
            driver.HOT_PATH.share_pairs,
        ) = saved


def _timed_analysis(sf, batch, memo):
    """Best-of-ROUNDS whole-analysis and pair-stage seconds."""

    best_total = best_pair = float("inf")
    pa = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        pa = _with_hot_path(
            batch, memo, memo, lambda: analyze_program(sf, FeatureSet())
        )
        total = time.perf_counter() - t0
        pair = sum(ua.pair_seconds for ua in pa.units.values())
        best_total = min(best_total, total)
        best_pair = min(best_pair, pair)
    return best_total, best_pair, program_fingerprint(pa)


def test_batched_tester_speedup_by_size(benchmark):
    """Scalar vs batched across size tiers, cold and warm memo, with
    byte-identical fingerprints everywhere and the >= 3x acceptance
    gate on the 40-routine cold path."""

    def measure():
        rows = []
        for k in SIZES:
            sf = parse_and_bind(generate_program(n_routines=k))
            # Warm the parser/summary caches out of the measurement.
            _with_hot_path(
                True, True, True,
                lambda: analyze_program(sf, FeatureSet()),
            )
            row = {"routines": k}
            for mode, memo in (("cold", False), ("warm", True)):
                ts, ps, fs = _timed_analysis(sf, batch=False, memo=memo)
                tb, pb, fb = _timed_analysis(sf, batch=True, memo=memo)
                assert fb == fs, (k, mode)
                row[mode] = {
                    "scalar_total_s": ts,
                    "batched_total_s": tb,
                    "scalar_pair_s": ps,
                    "batched_pair_s": pb,
                    "end_to_end_speedup": ts / max(tb, 1e-9),
                    "pair_stage_speedup": ps / max(pb, 1e-9),
                    "fingerprints_identical": True,
                }
            rows.append(row)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)

    accept = next(r for r in rows if r["routines"] == ACCEPT_SIZE)
    _merge_artifact(
        "size_tiers",
        {
            "rounds_best_of": ROUNDS,
            "tiers": rows,
            "acceptance": {
                "routines": ACCEPT_SIZE,
                "end_to_end_speedup_cold": accept["cold"][
                    "end_to_end_speedup"
                ],
                "pair_stage_speedup_cold": accept["cold"][
                    "pair_stage_speedup"
                ],
                "end_to_end_speedup_warm": accept["warm"][
                    "end_to_end_speedup"
                ],
                "pair_stage_speedup_warm": accept["warm"][
                    "pair_stage_speedup"
                ],
            },
        },
    )
    # Acceptance: >= 3x end to end on the 40-routine suite against the
    # scalar tester (cold path — every pair actually tested).
    assert accept["cold"]["end_to_end_speedup"] >= 3.0, accept
    # The warm path must never regress behind scalar.
    assert accept["warm"]["end_to_end_speedup"] >= 1.0, accept


def test_batched_fingerprints_across_execution_modes(benchmark):
    """Serial, --jobs 2 and a 2-shard fleet must all produce the same
    bytes with batching on (default hot path)."""

    source = generate_program(n_routines=ACCEPT_SIZE)

    # Serial vs worker-pool engines on the 40-routine program.
    serial_engine = AnalysisEngine()
    pool = WorkerPool(2, stats=EngineStats())
    jobs_engine = AnalysisEngine(pool=pool)
    try:
        _, pa_serial = serial_engine.analyze(source)
        _, pa_jobs = benchmark.pedantic(
            jobs_engine.analyze, args=(source,),
            rounds=1, iterations=1, warmup_rounds=0,
        )
        fp_serial = program_fingerprint(pa_serial)
        fp_jobs = program_fingerprint(pa_jobs)
    finally:
        pool.close()
    assert fp_jobs == fp_serial

    # The same corpus through a single host and a routed 2-shard fleet.
    programs = [("forty", source)] + [
        (f"side{i}", generate_program(n_routines=3 + i, n_fields=2, grid=8))
        for i in range(3)
    ]
    runner = CorpusRunner(features=FeatureSet(), stats=EngineStats())
    local = runner.submit(programs)
    runner.run(local)
    local_digests = {
        r["program"]: r["digest"] for r in local.result_records()
    }

    shards, addrs = [], []
    for _ in range(2):
        shard = PedServer(max_workers=4)
        transport = AsyncTransport(shard)
        addrs.append(f"127.0.0.1:{transport.start_background()}")
        shards.append((shard, transport))
    router = FleetRouter(addrs, retries=1)
    rtransport = AsyncTransport(router)
    rport = rtransport.start_background()
    try:
        with PedClient.connect(port=rport) as client:
            reply = client.corpus_submit(programs, wait=True)
            assert reply["complete"] and reply["errors"] == 0, reply
            assert len(reply["shards"]) == 2, reply
            records = client.request(
                "corpus.results", job=reply["job"], wait=120
            )["records"]
        fleet_digests = {r["program"]: r["digest"] for r in records}
    finally:
        rtransport.stop_background()
        router.close()
        for shard, transport in shards:
            transport.stop_background()
            shard.close()
    assert fleet_digests == local_digests

    _merge_artifact(
        "execution_modes",
        {
            "routines": ACCEPT_SIZE,
            "serial_fingerprint": fp_serial,
            "jobs2_identical": fp_jobs == fp_serial,
            "fleet_shards": 2,
            "fleet_digests_identical": fleet_digests == local_digests,
        },
    )


def test_m1_stats_bit_identical_with_and_without_memo(benchmark):
    """The M1 tier statistics the paper's tables are built from must
    not move when the memo (or the batch executor) is toggled."""

    def stats_for(batch, memo):
        return _with_hot_path(
            batch, memo, memo,
            lambda: asdict(dependence_test_stats(["spec77", "onedim"])),
        )

    reference = benchmark.pedantic(
        stats_for, args=(False, False),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    variants = {
        "batched_no_memo": stats_for(True, False),
        "batched_memo": stats_for(True, True),
        "scalar_memo": stats_for(False, True),
    }
    for name, got in variants.items():
        assert got == reference, name
    _merge_artifact(
        "m1_stats",
        {
            "programs": ["spec77", "onedim"],
            "bit_identical_across_modes": True,
            "modes": ["scalar_no_memo"] + sorted(variants),
        },
    )


WIRE_SOURCE = """      subroutine p(a, n)
      integer n, i
      real a(100)
      do 10 i = 1, n
         a(i) = a(i) + 1.0
 10   continue
      end
"""


def test_binary_frames_transfer_fewer_bytes(benchmark):
    """A streamed edit session over binary delta frames moves fewer
    bytes than the identical session over JSON lines."""

    srv = PedServer(max_workers=2)
    tcp = serve_tcp(srv)
    threading.Thread(
        target=tcp.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    ).start()
    port = tcp.server_address[1]

    def run_session(binary: bool):
        with PedClient.connect(port=port) as c:
            if binary:
                assert c.negotiate_frames() is True
            sid = f"wire{int(binary)}"
            c.request("open", session=sid, source=WIRE_SOURCE)
            for i in range(8):
                c.request(
                    "edit", session=sid, start=4, end=4,
                    text=f"         a(i) = a(i) + {i}.0",
                )
                c.request("loops", session=sid, unit="p")
                c.request("deps", session=sid, unit="p")
                c.request("source", session=sid)
            return c.bytes_received, c.bytes_sent

    try:
        json_in, json_out = run_session(binary=False)
        bin_in, bin_out = benchmark.pedantic(
            run_session, args=(True,),
            rounds=1, iterations=1, warmup_rounds=0,
        )
    finally:
        tcp.shutdown()
        tcp.server_close()
        srv.close()

    assert bin_in < json_in, (bin_in, json_in)
    _merge_artifact(
        "wire",
        {
            "session": "open + 8x(edit, loops, deps, source)",
            "json_bytes_received": json_in,
            "json_bytes_sent": json_out,
            "binary_bytes_received": bin_in,
            "binary_bytes_sent": bin_out,
            "bytes_ratio_json_over_binary": json_in / max(bin_in, 1),
        },
    )
