"""Experiment M1 — the dependence-test hierarchy.

"A hierarchical suite of tests is used, starting with inexpensive tests,
to prove or disprove that a dependence exists."  This bench regenerates
the tier statistics over the whole suite and micro-benchmarks the
individual tests, verifying the engineering claim:

* the cheap tiers (ZIV + exact SIV) settle ≥ 80% of classic
  element-reference pairs;
* a ZIV test costs a small fraction of a Banerjee direction-vector
  bound (the hierarchy's reason to exist).
"""

from fractions import Fraction

import pytest

from repro.analysis.symbolic import Linear
from repro.dependence.tests import (
    LoopBound,
    banerjee_test,
    gcd_test,
    strong_siv_test,
    ziv_test,
)
from repro.evaluation.hierarchy_stats import dependence_test_stats

from conftest import save_artifact


def test_hierarchy_resolution_stats(benchmark):
    stats = benchmark.pedantic(
        dependence_test_stats, rounds=1, iterations=1, warmup_rounds=0
    )
    assert stats.total_classic > 50
    assert stats.cheap_fraction() >= 0.8
    text = (
        f"classic pairs: {stats.total_classic}\n"
        f"resolved by tier (classic): {stats.classic_resolved}\n"
        f"resolved by tier (all, incl. call sections): {stats.pairs_resolved}\n"
        f"individual tests run: {stats.tests_run}\n"
        f"cheap-tier fraction (classic pairs): {stats.cheap_fraction():.3f}\n"
    )
    save_artifact("hierarchy_stats.txt", text)


_DIFF = Linear.constant(3)
_BOUND = LoopBound("i", 1, 100)
_BOUNDS = [LoopBound("i", 1, 100), LoopBound("j", 1, 100)]
_SRC = {"i": 2, "j": 3}
_SNK = {"i": 2, "j": -1}


def test_ziv_cost(benchmark):
    out = benchmark(ziv_test, _DIFF)
    assert out.result == "indep"


def test_strong_siv_cost(benchmark):
    out = benchmark(strong_siv_test, 1, _DIFF, _BOUND)
    assert out.distance == 3


def test_gcd_cost(benchmark):
    out = benchmark(gcd_test, _SRC, _SNK, Linear.constant(1))
    assert out.result in ("indep", "maybe")


def test_banerjee_cost(benchmark):
    out = benchmark(
        banerjee_test, _SRC, _SNK, _DIFF, _BOUNDS, ("<", "*")
    )
    assert out.result in ("indep", "maybe")
