"""Experiment F1 — Figure 1: the Ped window layout.

Regenerates the editor window (source pane, loop list, dependence pane
with filter, variable pane) over a suite program with the key loop
selected, and checks the layout's structural invariants.  The timed body
is a full window render including the session analyses it displays.
"""

from repro.evaluation.figures import figure1_window

from conftest import save_artifact


def _render():
    return figure1_window("arc3d")


def test_figure1_window(benchmark):
    window = benchmark.pedantic(_render, rounds=3, iterations=1, warmup_rounds=0)

    # Figure 1's described layout, top to bottom.
    assert "ParaScope Editor" in window
    order = [
        window.index("== source"),
        window.index("== loops"),
        window.index("== dependences"),
        window.index("== variables"),
    ]
    assert order == sorted(order)
    # The pane contents visible in the paper's screenshot analogues.
    assert "do j = 1, mm" in window  # source text
    assert "filter:" in window  # dependence filter line
    assert "index" in window  # variable classification
    # The selected loop is highlighted with a marker.
    assert "\n>" in window

    save_artifact("figure1.txt", window)
