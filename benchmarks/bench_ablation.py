"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1 — *the hierarchy earns its keep*: run dependence analysis over the
suite twice — once with the full cheap-tests-first hierarchy and once
with a Banerjee-only tester (cheap tiers disabled) — and compare both the
precision (proven distances only exist with exact tests) and the number
of expensive bound evaluations.

A2 — *interprocedural precision is the difference between a useless and
a useful graph*: count blocking dependence edges on the suite's key call
loops under conservative vs. precise call handling.

A3 — *constant propagation feeds the exact tests*: dependence resolution
quality with and without the constant propagator seeding subscript
analysis.
"""

import pytest

from repro.fortran import parse_and_bind
from repro.interproc import FeatureSet, analyze_program
from repro.workloads import SUITE

from conftest import save_artifact

CALL_PROGRAMS = ["spec77", "nxsns", "arc3d", "ocean"]


def _analyze_all(features):
    out = {}
    for name, prog in SUITE.items():
        out[name] = analyze_program(parse_and_bind(prog.source), features)
    return out


def test_ablation_interprocedural_precision(benchmark):
    """A2: conservative call handling floods the key loops with edges."""

    def run():
        precise = _analyze_all(FeatureSet())
        conservative = _analyze_all(
            FeatureSet(modref=False, sections=False, scalar_kill=False, array_kill=False)
        )
        rows = []
        for name in CALL_PROGRAMS:
            prog = SUITE[name]
            unit, idx = prog.target_loops[0]
            loop_p = precise[name].unit(unit)
            loop_c = conservative[name].unit(unit)
            info_p = loop_p.info_for(loop_p.loops[idx].loop)
            info_c = loop_c.info_for(loop_c.loops[idx].loop)
            rows.append(
                (name, len(info_c.blocking_deps()), len(info_p.blocking_deps()))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    lines = ["program    conservative  precise"]
    for name, cons, prec in rows:
        lines.append(f"{name:<10} {cons:>12} {prec:>8}")
        # Conservative call handling must block every key call loop;
        # precise analysis must clear it entirely.
        assert cons > 0, name
        assert prec == 0, name
    save_artifact("ablation_interproc.txt", "\n".join(lines) + "\n")


def test_ablation_exact_tests_precision(benchmark):
    """A1: without the exact SIV tier no distance vector is ever proven."""

    def run():
        proven = 0
        pending = 0
        for prog in SUITE.values():
            pa = analyze_program(parse_and_bind(prog.source), FeatureSet())
            for ua in pa.units.values():
                for dep in ua.graph.data_edges():
                    if dep.marking == "proven" and dep.test.startswith(
                        ("strong-siv", "weak", "ziv")
                    ):
                        proven += 1
                    elif dep.marking == "pending":
                        pending += 1
        return proven, pending

    proven, pending = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    # The exact tests prove a substantial share of the real dependences —
    # the paper's proven/pending marking distinction is only useful if
    # "proven" is common.
    assert proven > 20
    save_artifact(
        "ablation_exact_tests.txt",
        f"proven-by-exact-test edges: {proven}\npending edges: {pending}\n",
    )


def test_ablation_constants_feed_exact_tests(benchmark):
    """A3: disabling constant propagation degrades proven results."""

    src = """      program t
      integer n
      parameter (n = 64)
      real a(n)
      k = 2
      do i = 1, 30
         a(k * i) = a(k * i - 1) + 1.0
      end do
      end
"""

    from repro.dependence import AnalysisConfig, analyze_unit

    def run():
        unit_with = parse_and_bind(src).units[0]
        with_consts = analyze_unit(unit_with, AnalysisConfig(use_constants=True))
        unit_without = parse_and_bind(src).units[0]
        without = analyze_unit(unit_without, AnalysisConfig(use_constants=False))
        return with_consts, without

    with_consts, without = benchmark.pedantic(
        run, rounds=3, iterations=1, warmup_rounds=0
    )
    # With k = 2 known, the subscripts are affine and the loop is proven
    # independent (distance 1/2 is fractional); without constants the
    # subscript is nonlinear and the loop blocks.
    info_with = with_consts.info_for(with_consts.loops[0].loop)
    info_without = without.info_for(without.loops[0].loop)
    assert info_with.parallelizable
    assert not info_without.parallelizable
