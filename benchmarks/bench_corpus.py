"""Experiment M5 — corpus-scale batch analysis.

The paper's tables summarize obstacle and transformation frequencies
over a whole benchmark suite; the corpus ops reproduce that workflow at
fleet scale.  This bench drives a 40-program synthetic corpus through
``corpus.submit`` on the real wire, counts the per-program
``corpus.program`` progress events, queries all four aggregate nodes,
and records the rollups to ``benchmarks/out/corpus.json``.  The
qualitative shape asserted before timing: one progress event per
program in submission order, tier counts that sum to the pair total,
and a cached re-query.  The timed section is a 3-program smoke batch —
submit through aggregate query — so CI tracks the end-to-end op cost
without paying for the full fleet every round.
"""

import json
import threading
import time

import pytest

from repro.service import PedClient, PedServer, serve_tcp
from repro.workloads.generator import generate_program

from conftest import save_artifact

FLEET_SIZE = 40


def corpus(n):
    """``n`` small distinct programs — the fleet the paper tables sum."""

    return [
        {
            "name": f"fleet{i:02d}",
            "source": generate_program(
                n_routines=2 + i % 3,
                n_fields=2 + i % 2,
                grid=8 + 4 * (i % 3),
                steps=2 + i % 4,
            ),
        }
        for i in range(n)
    ]


@pytest.fixture
def served_client():
    srv = PedServer(max_workers=4)
    tcp = serve_tcp(srv)
    thread = threading.Thread(
        target=tcp.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    client = PedClient.connect(port=tcp.server_address[1])
    yield client
    client.close()
    tcp.shutdown()
    tcp.server_close()
    srv.close()


def test_fleet_rollups_over_40_programs(served_client):
    programs = corpus(FLEET_SIZE)
    progress = []
    result = None
    t0 = time.perf_counter()
    for ev in served_client.stream(
        "corpus.submit", programs=programs, job="fleet", wait=600.0
    ):
        if ev.kind == "result":
            result = ev.data
        elif ev.data.get("phase") == "corpus.program":
            progress.append(ev.data)
    batch_s = time.perf_counter() - t0

    assert result["complete"] is True
    assert result["done"] == result["total"] == FLEET_SIZE
    assert result["errors"] == 0
    # One progress event per program, in submission order.
    assert [p["program"] for p in progress] == [
        p["name"] for p in programs
    ]
    assert [p["done"] for p in progress] == list(
        range(1, FLEET_SIZE + 1)
    )

    rollups = {
        name: served_client.corpus_query("fleet", name)
        for name in ("summary", "obstacles", "tiers", "transforms")
    }
    summary = rollups["summary"]["value"]
    assert summary["programs"] == FLEET_SIZE
    assert summary["loops"] > 0
    tiers = rollups["tiers"]["value"]
    assert sum(tiers["tiers"].values()) == tiers["pairs"]
    obstacles = rollups["obstacles"]["value"]
    if obstacles["ranked"]:
        assert obstacles["top"] == obstacles["ranked"][0]["obstacle"]
    # Second query of a cached aggregate never recomputes.
    assert served_client.corpus_query("fleet", "summary")["cached"] is True

    save_artifact(
        "corpus.json",
        json.dumps(
            {
                "programs": FLEET_SIZE,
                "batch_s": batch_s,
                "progress_events": len(progress),
                "aggregates": {
                    name: q["value"] for name, q in rollups.items()
                },
            },
            indent=2,
        )
        + "\n",
    )


def test_corpus_smoke_submit_to_query(benchmark, served_client):
    programs = corpus(3)
    state = {"n": 0}

    def timed_batch():
        job = f"smoke{state['n']}"
        state["n"] += 1
        result = served_client.corpus_submit(
            [(p["name"], p["source"]) for p in programs],
            job=job,
            wait=True,
            timeout=300.0,
        )
        summary = served_client.corpus_query(job, "summary")["value"]
        return result, summary

    result, summary = timed_batch()
    assert result["complete"] is True
    assert result["errors"] == 0
    assert summary["programs"] == len(programs)
    assert summary["loops"] > 0

    benchmark.pedantic(timed_batch, rounds=3, iterations=1, warmup_rounds=0)
