"""Experiment M4 — streaming responsiveness.

An interactive front end cares about *time to first signal*, not just
time to the full analysis: a progress bar that appears after the work is
done is decoration.  This bench opens a 40-routine workload through the
streaming protocol and measures the latency of the first
``analysis.progress`` event against the terminal reply, recording both
— plus the total wire bytes the client saw (``bench_wire.py`` compares
those across protocol levels) — to ``benchmarks/out/streaming.json``.  The qualitative shape asserted
before timing: at least one progress event strictly precedes the
result, with ordered sequence ids, and the first event lands in a
fraction of the full-reply latency.
"""

import json
import threading
import time

import pytest

from repro.service import PedClient, PedServer, serve_tcp
from repro.workloads.generator import generate_program

from conftest import save_artifact


@pytest.fixture
def served_client():
    srv = PedServer(max_workers=4)
    tcp = serve_tcp(srv)
    thread = threading.Thread(
        target=tcp.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    client = PedClient.connect(port=tcp.server_address[1])
    yield client
    client.close()
    tcp.shutdown()
    tcp.server_close()
    srv.close()


def test_time_to_first_progress_event(benchmark, served_client):
    source = generate_program(n_routines=40)
    state = {"n": 0}

    def timed_streamed_open():
        session = f"s{state['n']}"
        state["n"] += 1
        t0 = time.perf_counter()
        first_event_s = None
        events = 0
        for ev in served_client.stream(
            "open", session=session, source=source, wait=300
        ):
            if ev.kind == "analysis.progress":
                events += 1
                if first_event_s is None:
                    first_event_s = time.perf_counter() - t0
            elif ev.kind == "result":
                total_s = time.perf_counter() - t0
        return first_event_s, total_s, events

    first_s, total_s, events = timed_streamed_open()
    assert events >= 1, "a streamed open must push progress events"
    assert first_s < total_s, "the first event must precede the reply"
    # The point of streaming: the first signal lands well before the
    # full answer (the split phase fires before any unit is analyzed).
    assert first_s < total_s * 0.5, (
        f"first progress event ({first_s:.4f}s) should land in a "
        f"fraction of the full reply ({total_s:.4f}s)"
    )

    save_artifact(
        "streaming.json",
        json.dumps(
            {
                "routines": 40,
                "progress_events": events,
                "time_to_first_progress_s": first_s,
                "time_to_full_reply_s": total_s,
                "first_signal_fraction": first_s / total_s,
                "bytes_received": served_client.bytes_received,
                "bytes_sent": served_client.bytes_sent,
            },
            indent=2,
        )
        + "\n",
    )
    benchmark.pedantic(
        timed_streamed_open, rounds=3, iterations=1, warmup_rounds=0
    )
