"""Experiment M5 — crash recovery economics.

The durable journal's pitch: after a server dies, ``session.restore``
replays the mutation log through an engine warmed by the shared
persistent store, so getting the session back costs much less than the
cold re-analysis a journal-less design would pay.  This bench records
both sides of that trade on a scripted 8-edit session over a
60-routine workload:

* **cold** — :func:`replay_journal` on a fresh engine with no store,
  i.e. re-running the whole history from source;
* **warm** — a brand-new server process state (fresh ``PedServer``)
  over the dead server's cache dir, timing only the ``session.restore``
  op.

``replay.restore_speedup = cold / warm`` is gated in
``benchmarks/baselines.json``; the raw seconds ride along in
``benchmarks/out/replay.json`` but are never gated (they are
machine-dependent).
"""

import json
import statistics
import time

import pytest

from repro.editor.journal import SessionJournal, replay_journal
from repro.incremental.fingerprint import fingerprint_digest
from repro.service import PedServer
from repro.service.persist import PersistentStore
from repro.workloads.generator import generate_program

from conftest import save_artifact

WORK_SUB = (
    "      subroutine benchwork(a, b, n)\n"
    "      real a(100), b(100)\n"
    "      do i = 1, n\n"
    "         a(i) = a(i) + 1.0\n"
    "      enddo\n"
    "      do j = 1, n\n"
    "         s = b(j)\n"
    "         b(j) = s * 2.0\n"
    "      enddo\n"
    "      end\n"
)

N_EDITS = 8


def _ok(reply):
    assert reply["ok"], reply.get("error")
    return reply["result"]


def _source():
    return generate_program(n_routines=60) + WORK_SUB


def _edit_line(source):
    return source.splitlines().index("         a(i) = a(i) + 1.0") + 1


def _record_session(cache_dir, source, line):
    """The doomed server: open, run the 8 scripted edits, die
    (gracefully here — the SIGKILL variant is covered by the restore
    tests; the journal contents are identical either way)."""

    srv = PedServer(max_workers=4, cache_dir=cache_dir)
    try:
        _ok(srv.execute({"op": "open", "session": "bench", "source": source}))
        for i in range(N_EDITS):
            text = f"         a(i) = a(i) + {i + 2}.0"
            _ok(
                srv.execute(
                    {
                        "op": "edit",
                        "session": "bench",
                        "start": line,
                        "end": line,
                        "text": text,
                    }
                )
            )
        return _ok(srv.execute({"op": "fingerprint", "session": "bench"}))[
            "fingerprint"
        ]
    finally:
        srv.close()


def test_restore_speedup(benchmark, tmp_path):
    cache_dir = tmp_path / "cache"
    source = _source()
    line = _edit_line(source)
    live_fp = _record_session(cache_dir, source, line)

    payload = PersistentStore.at(cache_dir).journal("bench").load()
    assert payload is not None, "the journal must survive the server"
    journal = SessionJournal.from_wire(payload)
    assert len(journal) == N_EDITS

    def cold_replay():
        t0 = time.perf_counter()
        session = replay_journal(journal)
        elapsed = time.perf_counter() - t0
        digest = fingerprint_digest(session.analysis)
        session.close()
        return elapsed, digest

    def warm_restore():
        srv = PedServer(max_workers=4, cache_dir=cache_dir)
        try:
            t0 = time.perf_counter()
            result = _ok(
                srv.execute({"op": "session.restore", "session": "bench"})
            )
            elapsed = time.perf_counter() - t0
            return elapsed, result["fingerprint"]
        finally:
            srv.close()

    colds, warms = [], []
    for _ in range(3):
        cold_s, cold_fp = cold_replay()
        warm_s, warm_fp = warm_restore()
        # Every path lands on the byte-identical state the dead server
        # last acknowledged.
        assert cold_fp == warm_fp == live_fp
        colds.append(cold_s)
        warms.append(warm_s)

    cold_s = statistics.median(colds)
    warm_s = statistics.median(warms)
    speedup = cold_s / warm_s
    assert speedup > 1.0, (
        f"warm restore ({warm_s:.3f}s) must beat cold re-analysis "
        f"({cold_s:.3f}s)"
    )

    save_artifact(
        "replay.json",
        json.dumps(
            {
                "routines": 61,
                "edits": N_EDITS,
                "journal_records": len(journal),
                "cold_replay_s": cold_s,
                "warm_restore_s": warm_s,
                "restore_speedup": speedup,
            },
            indent=2,
        )
        + "\n",
    )

    benchmark.pedantic(
        warm_restore, rounds=3, iterations=1, warmup_rounds=0
    )
