"""Experiment T3 — Table 3: analysis contribution per program.

For each suite program, toggles each analysis capability off from the
full Ped configuration and records whether the program's key loops stay
parallelizable — regenerating the paper's "importance of existing
analysis" matrix.

Shape checks (each row reproduces the paper's account of that program):

* spec77 / arc3d / nxsns need interprocedural analysis on calls inside
  loops (sections; nxsns also MOD/REF + scalar kill);
* arc3d needs interprocedural array kill; slab2d needs array kill
  combined with privatization;
* pneoss / boast / slab2d need reduction recognition;
* shear / interior need interprocedural constants (symbolic subscripts /
  bounds); onedim needs a user assertion (index arrays);
* every requirement our construction documents (``prog.needs``) that maps
  to a toggle is detected.
"""

from repro.evaluation.tables import render_table3, table3_analysis

from conftest import save_artifact


def test_table3_analysis(benchmark):
    rows = benchmark.pedantic(
        table3_analysis, rounds=1, iterations=1, warmup_rounds=0
    )
    by_name = {r.name: r for r in rows}

    assert by_name["spec77"].required["sections"]
    assert by_name["arc3d"].required["sections"]
    assert by_name["arc3d"].required["array_kill"]
    assert by_name["nxsns"].required["modref"]
    assert by_name["nxsns"].required["scalar_kill"]
    assert by_name["slab2d"].required["array_kill"]
    assert by_name["slab2d"].required["reductions"]
    assert by_name["pneoss"].required["reductions"]
    assert by_name["boast"].required["reductions"]
    assert by_name["shear"].required["ip_constants"]
    assert by_name["interior"].required["ip_constants"]
    assert by_name["onedim"].needs_assertion
    # Programs whose story is analysis-only must NOT need assertions.
    for clean in ("spec77", "arc3d", "pneoss", "boast"):
        assert not by_name[clean].needs_assertion, clean

    save_artifact("table3.txt", render_table3())
