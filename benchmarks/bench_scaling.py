"""Experiment M3 — analysis scaling with program size.

An interactive tool must stay responsive on 5600-line programs (spec77's
real size).  This bench generates structurally spec77-like programs of
increasing size and measures front-end and whole-program-analysis cost,
asserting near-linear growth (the analyses are per-procedure plus a
call-graph pass; nothing quadratic in program size should appear).
"""

import time

import pytest

from repro.fortran import parse_and_bind
from repro.interproc import FeatureSet, analyze_program
from repro.workloads.generator import generate_program

from conftest import save_artifact


@pytest.mark.parametrize("n_routines", [5, 20])
def test_frontend_scaling(benchmark, n_routines):
    source = generate_program(n_routines=n_routines)
    sf = benchmark(parse_and_bind, source)
    assert len(sf.units) == n_routines + 2


def test_analysis_scaling_is_near_linear(benchmark):
    sizes = [5, 10, 20, 40]
    results = []

    def measure():
        out = []
        for k in sizes:
            source = generate_program(n_routines=k)
            sf = parse_and_bind(source)
            lines = len(source.splitlines())
            t0 = time.perf_counter()
            pa = analyze_program(sf, FeatureSet())
            dt = time.perf_counter() - t0
            driver = pa.unit("driver")
            driver_ok = driver.info_for(driver.loops[0].loop).parallelizable
            out.append(
                (k, lines, dt, pa.parallel_loop_count(), pa.loop_count(), driver_ok)
            )
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)

    text_lines = ["routines  lines  seconds  parallel/total"]
    for k, lines, dt, par, total, driver_ok in results:
        text_lines.append(f"{k:>8} {lines:>6} {dt:>8.3f}  {par}/{total}")
        # The gloop-style driver loop parallelizes at every size (sections
        # must keep working as the program grows); the in-place stencil
        # routines are genuinely serial, like their spec77 originals.
        assert driver_ok, k
        assert par >= 5
    save_artifact("scaling.txt", "\n".join(text_lines) + "\n")

    # Near-linear: 8x the routines may cost at most ~16x the time
    # (allows constant overheads + mild superlinearity, rejects quadratic).
    t_small = results[0][2]
    t_large = results[-1][2]
    ratio = t_large / max(t_small, 1e-9)
    assert ratio < (sizes[-1] / sizes[0]) ** 1.6, ratio


def test_interactive_latency_on_spec77_sized_program(benchmark):
    """A ~1.5k-line program must analyze at interactive latency."""

    source = generate_program(n_routines=100, n_fields=6)
    sf = parse_and_bind(source)
    assert len(source.splitlines()) > 1000

    def analyze_once():
        return analyze_program(sf, FeatureSet())

    pa = benchmark.pedantic(analyze_once, rounds=3, iterations=1, warmup_rounds=0)
    assert pa.loop_count() > 60
