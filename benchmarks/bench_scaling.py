"""Experiment M3 — analysis scaling with program size.

An interactive tool must stay responsive on 5600-line programs (spec77's
real size).  This bench generates structurally spec77-like programs of
increasing size and measures front-end and whole-program-analysis cost,
asserting near-linear growth (the analyses are per-procedure plus a
call-graph pass; nothing quadratic in program size should appear).

It also measures the dependence engine's hot-path overhaul: pair
pruning and test memoization must at least halve whole-program analysis
time on the 40-routine workload while producing byte-identical
dependence graphs, and the per-size pruning / memo hit rates are
recorded to ``benchmarks/out/hotpath.json``.
"""

import json
import time

import pytest

from repro.dependence import driver
from repro.fortran import parse_and_bind
from repro.incremental import program_fingerprint
from repro.interproc import FeatureSet, analyze_program
from repro.workloads.generator import generate_program

from conftest import save_artifact


def _hotpath_totals(pa):
    totals = {"pairs_pruned": 0, "memo_hits": 0, "memo_misses": 0}
    pairs = 0
    tier_seconds = {}
    for ua in pa.units.values():
        for key, value in ua.hotpath_stats().items():
            totals[key] = totals.get(key, 0) + value
        pairs += sum(ua.tester.pair_resolution.values())
        for tier, secs in (ua.tester.tier_seconds or {}).items():
            tier_seconds[tier] = tier_seconds.get(tier, 0.0) + secs
    if tier_seconds:
        totals["tier_seconds"] = tier_seconds
    totals["pairs_total"] = pairs
    totals["prune_rate"] = totals["pairs_pruned"] / pairs if pairs else 0.0
    looked = totals["memo_hits"] + totals["memo_misses"]
    totals["memo_hit_rate"] = totals["memo_hits"] / looked if looked else 0.0
    return totals


def _with_hot_path(prune, memo, fn, batch=None):
    saved = (
        driver.HOT_PATH.prune_pairs,
        driver.HOT_PATH.memoize_pairs,
        driver.HOT_PATH.batch_pairs,
    )
    driver.HOT_PATH.prune_pairs = prune
    driver.HOT_PATH.memoize_pairs = memo
    if batch is not None:
        driver.HOT_PATH.batch_pairs = batch
    try:
        return fn()
    finally:
        (
            driver.HOT_PATH.prune_pairs,
            driver.HOT_PATH.memoize_pairs,
            driver.HOT_PATH.batch_pairs,
        ) = saved


@pytest.mark.parametrize("n_routines", [5, 20])
def test_frontend_scaling(benchmark, n_routines):
    source = generate_program(n_routines=n_routines)
    sf = benchmark(parse_and_bind, source)
    assert len(sf.units) == n_routines + 2


def test_analysis_scaling_is_near_linear(benchmark):
    sizes = [5, 10, 20, 40, 80, 160]
    results = []

    def measure():
        # Per-tier wall time rides into hotpath.json (the --profile
        # instrumentation; adds only perf_counter calls per test).
        saved_profile = driver.HOT_PATH.profile_tiers
        driver.HOT_PATH.profile_tiers = True
        try:
            return _measure_sizes()
        finally:
            driver.HOT_PATH.profile_tiers = saved_profile

    def _measure_sizes():
        out = []
        for k in sizes:
            source = generate_program(n_routines=k)
            sf = parse_and_bind(source)
            lines = len(source.splitlines())
            t0 = time.perf_counter()
            pa = analyze_program(sf, FeatureSet())
            dt = time.perf_counter() - t0
            driver_ua = pa.unit("driver")
            driver_ok = driver_ua.info_for(
                driver_ua.loops[0].loop
            ).parallelizable
            out.append(
                (
                    k,
                    lines,
                    dt,
                    pa.parallel_loop_count(),
                    pa.loop_count(),
                    driver_ok,
                    _hotpath_totals(pa),
                )
            )
        return out

    results = benchmark.pedantic(measure, rounds=1, iterations=1, warmup_rounds=0)

    text_lines = ["routines  lines  seconds  parallel/total  prune%  memo%"]
    hotpath_rows = []
    for k, lines, dt, par, total, driver_ok, hp in results:
        text_lines.append(
            f"{k:>8} {lines:>6} {dt:>8.3f}  {par}/{total}"
            f"  {100.0 * hp['prune_rate']:5.1f}  {100.0 * hp['memo_hit_rate']:5.1f}"
        )
        hotpath_rows.append(dict(hp, routines=k, seconds=dt))
        # The gloop-style driver loop parallelizes at every size (sections
        # must keep working as the program grows); the in-place stencil
        # routines are genuinely serial, like their spec77 originals.
        assert driver_ok, k
        assert par >= 5
    save_artifact("scaling.txt", "\n".join(text_lines) + "\n")
    save_artifact(
        "hotpath.json", json.dumps({"sizes": hotpath_rows}, indent=2) + "\n"
    )
    # The hot path must actually fire at scale: most testable pairs
    # repeat a known pattern, and a solid slice never reaches a test.
    biggest = results[-1][-1]
    assert biggest["prune_rate"] > 0.05
    assert biggest["memo_hit_rate"] > 0.5

    # Near-linear: 8x the routines may cost at most ~16x the time
    # (allows constant overheads + mild superlinearity, rejects quadratic).
    t_small = results[0][2]
    t_large = results[-1][2]
    ratio = t_large / max(t_small, 1e-9)
    assert ratio < (sizes[-1] / sizes[0]) ** 1.6, ratio


def test_hotpath_speedup_on_40_routines(benchmark):
    """The dependence hot path — pair pruning, memoization and batched
    tier execution — at least halves 40-routine analysis time against
    the fully scalar reference, with byte-identical dependence graphs
    (parity asserted here, not assumed)."""

    source = generate_program(n_routines=40)

    def analyze():
        return analyze_program(parse_and_bind(source), FeatureSet())

    def timed(prune, memo, batch):
        t0 = time.perf_counter()
        pa = _with_hot_path(prune, memo, analyze, batch=batch)
        return time.perf_counter() - t0, pa

    def measure():
        t_ref, pa_ref = timed(False, False, False)
        t_opt, pa_opt = timed(True, True, True)
        return t_ref, pa_ref, t_opt, pa_opt

    t_ref, pa_ref, t_opt, pa_opt = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=1
    )
    assert program_fingerprint(pa_opt) == program_fingerprint(pa_ref)
    totals = _hotpath_totals(pa_opt)
    speedup = t_ref / max(t_opt, 1e-9)
    save_artifact(
        "hotpath_speedup.json",
        json.dumps(
            dict(
                totals,
                routines=40,
                seconds_reference=t_ref,
                seconds_optimized=t_opt,
                speedup=speedup,
            ),
            indent=2,
        )
        + "\n",
    )
    assert speedup >= 2.0, (t_ref, t_opt)


def test_interactive_latency_on_spec77_sized_program(benchmark):
    """A ~1.5k-line program must analyze at interactive latency."""

    source = generate_program(n_routines=100, n_fields=6)
    sf = parse_and_bind(source)
    assert len(source.splitlines()) > 1000

    def analyze_once():
        return analyze_program(sf, FeatureSet())

    pa = benchmark.pedantic(analyze_once, rounds=3, iterations=1, warmup_rounds=0)
    assert pa.loop_count() > 60
