"""Experiment F2 — the SC'89 worked tool-interaction figures.

Regenerates the style of the original ParaScope Editor paper's figures:
the dependence display for a wavefront recurrence, power steering
refusing an illegal interchange (and proposing skewing), distribution
isolating a reduction, and a parallelized result.
"""

from repro.evaluation.figures import figure2_worked_examples

from conftest import save_artifact


def test_figure2_worked_examples(benchmark):
    sections = benchmark.pedantic(
        figure2_worked_examples, rounds=3, iterations=1, warmup_rounds=0
    )
    assert len(sections) == 4
    a, b, c, d = sections

    # (a) the wavefront's exact distance vectors are displayed.
    assert "(1,-1)" in a and "(1,0)" in a
    assert "proven" in a and "strong-siv" in a

    # (b) power steering: interchange refused, skewing proposed.
    assert "UNSAFE" in b
    assert "reverse dependences" in b
    assert "skew" in b and "safe" in b

    # (c) distribution splits the second loop into two.
    assert "2 independent loops" in c
    assert "distributed into 2 loops" in c

    # (d) the update loop is a DOALL in the regenerated source.
    assert "c$par doall" in d

    save_artifact("figure2.txt", "\n\n".join(sections))
