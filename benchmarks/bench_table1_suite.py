"""Experiment T1 — Table 1: the program suite.

Regenerates the suite table (name, domain, lines, procedures) and checks
its shape against the paper: spec77 is by far the largest program with
the most procedures, the rest span small-to-medium kernels.  The timed
body is the full front end over every suite program (parse + bind), the
work Table 1's statistics sit on.
"""

from repro.evaluation.tables import render_table1, table1_suite
from repro.fortran import parse_and_bind
from repro.workloads import SUITE

from conftest import save_artifact


def _parse_all():
    return [parse_and_bind(p.source) for p in SUITE.values()]


def test_table1_suite(benchmark):
    parsed = benchmark(_parse_all)
    assert len(parsed) == len(SUITE) == 10

    rows = table1_suite()
    by_name = {r.name: r for r in rows}
    # Shape: spec77 dominates in size and procedure count (5600/67 in the
    # paper; proportionally largest here).
    spec = by_name["spec77"]
    assert spec.lines == max(r.lines for r in rows)
    assert spec.procedures == max(r.procedures for r in rows)
    assert spec.procedures >= 10
    # pneoss is the small hand-sized code (350/5 in the paper).
    assert by_name["pneoss"].procedures <= 5
    # Every program parses to as many units as Table 1 claims procedures.
    for row, sf in zip(rows, parsed):
        assert len(sf.units) == row.procedures

    save_artifact("table1.txt", render_table1())
