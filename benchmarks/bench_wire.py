"""Experiment W2 — bytes on the wire across protocol levels.

The v6 wire stack claims an interactive session costs a fraction of its
JSON-lines bytes once a connection climbs the negotiation ladder
(``frames`` -> ``compress``): progress bursts coalesce into multi-record
frames and frames deflate against per-connection dictionaries seeded
from the delta baselines.  This bench measures exactly that, twice:

* an 8-edit streamed editing session against a threaded server, run
  three times — raw JSON lines, v5 binary frames, v6 compression — and
* a corpus submit fanned over a 2-shard fleet behind a router, with the
  client and the shard hops at the same level.

Each run records bytes received/sent (the client's own wire counters),
event throughput, and the session fingerprint.  The qualitative shape
asserted before timing: every mode yields the *identical* event
sequence and fingerprint (the stack is invisible except for cost), and
the compressed session ships at least 2.5x fewer bytes than frames
alone.  ``benchmarks/out/wire.json`` gets the numbers;
``wire.bytes_ratio_frames_over_compress`` is gated in
``benchmarks/baselines.json``.
"""

import json
import threading
import time

import pytest

from repro.fleet import AsyncTransport, FleetRouter
from repro.service import PedClient, PedServer, serve_tcp
from repro.workloads.generator import generate_program

from conftest import save_artifact

MODES = ("json", "frames", "compress")
EDITS = 8
#: Line 9 of the generated program seeds ``f0`` — editing its additive
#: constant dirties the main program unit without changing the parse
#: shape, so every edit re-analyzes and streams progress.
EDIT_LINE = 9
EDIT_TEXT = "            f0(i, j) = 0.01 * i + 0.1 * j + {k}.0"


def _negotiate(client: PedClient, mode: str) -> None:
    if mode in ("frames", "compress"):
        assert client.negotiate_frames(), "server must speak v5 frames"
    if mode == "compress":
        assert client.negotiate_compression(), "server must speak v6"


def _event_key(ev) -> tuple:
    return (ev.kind, json.dumps(ev.data, sort_keys=True))


def _streamed_session(mode: str) -> dict:
    """One fresh server + one client session: open, then 8 edits."""

    source = generate_program(n_routines=8)
    srv = PedServer(max_workers=4)
    tcp = serve_tcp(srv)
    thread = threading.Thread(
        target=tcp.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    try:
        with PedClient.connect(port=tcp.server_address[1]) as client:
            _negotiate(client, mode)
            events = []
            t0 = time.perf_counter()
            for ev in client.stream(
                "open", session="w", source=source, wait=300
            ):
                if ev.kind != "result":
                    events.append(_event_key(ev))
            for k in range(EDITS):
                for ev in client.stream(
                    "edit",
                    session="w",
                    start=EDIT_LINE,
                    end=EDIT_LINE,
                    text=EDIT_TEXT.format(k=k),
                    wait=300,
                ):
                    if ev.kind != "result":
                        events.append(_event_key(ev))
            seconds = time.perf_counter() - t0
            fingerprint = client.request("fingerprint", session="w")
            return {
                "mode": mode,
                "bytes_received": client.bytes_received,
                "bytes_sent": client.bytes_sent,
                "events": events,
                "events_per_s": len(events) / seconds if seconds else 0.0,
                "seconds": seconds,
                "fingerprint": fingerprint,
            }
    finally:
        tcp.shutdown()
        tcp.server_close()
        srv.close()
        thread.join(2)


def _fleet_submit(mode: str) -> dict:
    """Corpus submit over a 2-shard fleet, both hops at ``mode``."""

    programs = [
        {"name": f"p{i}", "source": generate_program(n_routines=2 + i % 3)}
        for i in range(6)
    ]
    shards = []
    addrs = []
    for _ in range(2):
        srv = PedServer(max_workers=2)
        t = AsyncTransport(srv)
        port = t.start_background()
        shards.append((srv, t))
        addrs.append(f"127.0.0.1:{port}")
    router = FleetRouter(addrs, retries=1, backoff=0.01, wire=mode)
    rtransport = AsyncTransport(router)
    rport = rtransport.start_background()
    try:
        with PedClient.connect(port=rport) as client:
            _negotiate(client, mode)
            progress = []
            t0 = time.perf_counter()
            handle = client.submit(
                "corpus.submit",
                programs=programs,
                job="w",
                wait=True,
                stream=True,
                on_event=lambda ev: progress.append(
                    (ev.data.get("program"), ev.data.get("total"))
                ),
            )
            reply = handle.result(300)
            seconds = time.perf_counter() - t0
            value = client.request(
                "corpus.query", job="w", aggregate="summary", wait=60
            )["value"]
            return {
                "mode": mode,
                "bytes_received": client.bytes_received,
                "bytes_sent": client.bytes_sent,
                "events_per_s": len(progress) / seconds if seconds else 0.0,
                "seconds": seconds,
                "programs": sorted(p for p, _ in progress if p),
                "totals": sorted({t for _, t in progress if t}),
                "complete": reply["complete"],
                "value": value,
            }
    finally:
        rtransport.stop_background()
        router.close()
        for srv, t in shards:
            t.stop_background()
            srv.close()


def test_wire_bytes_across_protocol_levels(benchmark):
    session = {mode: _streamed_session(mode) for mode in MODES}

    # Invisibility first: identical event sequences and fingerprints.
    for mode in ("frames", "compress"):
        assert session[mode]["events"] == session["json"]["events"], (
            f"{mode} changed the client-visible event sequence"
        )
        assert (
            session[mode]["fingerprint"] == session["json"]["fingerprint"]
        ), f"{mode} changed the session fingerprint"
    assert len(session["json"]["events"]) >= EDITS, (
        "the edit stream must push progress events"
    )

    ratio_frames = (
        session["frames"]["bytes_received"]
        / session["compress"]["bytes_received"]
    )
    ratio_json = (
        session["json"]["bytes_received"]
        / session["compress"]["bytes_received"]
    )
    assert ratio_frames >= 2.5, (
        f"compression+coalescing must ship >=2.5x fewer bytes than "
        f"frames alone, got {ratio_frames:.2f}x"
    )

    fleet = {mode: _fleet_submit(mode) for mode in MODES}
    for mode in ("frames", "compress"):
        assert fleet[mode]["programs"] == fleet["json"]["programs"]
        assert fleet[mode]["totals"] == fleet["json"]["totals"] == [6]
        assert fleet[mode]["value"] == fleet["json"]["value"], (
            f"{mode} changed the fleet aggregate"
        )
        assert fleet[mode]["complete"]
    fleet_ratio = (
        fleet["json"]["bytes_received"] / fleet["compress"]["bytes_received"]
    )
    assert fleet_ratio > 1.0, (
        f"a compressed fleet hop must not cost more bytes than JSON, "
        f"got {fleet_ratio:.2f}x"
    )

    strip = lambda r: {k: v for k, v in r.items() if k != "events"}  # noqa: E731
    save_artifact(
        "wire.json",
        json.dumps(
            {
                "edits": EDITS,
                "session": {m: strip(session[m]) for m in MODES},
                "fleet": fleet,
                "bytes_ratio_frames_over_compress": ratio_frames,
                "bytes_ratio_json_over_compress": ratio_json,
                "fleet_bytes_ratio_json_over_compress": fleet_ratio,
            },
            indent=2,
            default=str,
        )
        + "\n",
    )
    benchmark.pedantic(
        lambda: _streamed_session("compress"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
