"""Experiment T2 — Table 2: user actions and parallelization outcomes.

Regenerates the per-program table of (a) the user actions / transformations
each scripted Ped session performed and (b) loops parallelizable with the
naive automatic baseline versus after the Ped session.

Shape checks (the paper's findings):

* the automatic baseline parallelizes strictly fewer loops than Ped on
  every program — "such systems are not consistently successful";
* every program's *key* loops end up parallel only after the session;
* the interactive features used span the ones the paper reports:
  transformations, assertions, reclassification/privatization.
"""

from repro.evaluation.tables import render_table2, table2_transformations

from conftest import save_artifact


def test_table2_transformations(benchmark):
    rows = benchmark.pedantic(
        table2_transformations, rounds=1, iterations=1, warmup_rounds=0
    )
    assert len(rows) == 10
    for row in rows:
        assert row.ped_parallel > row.auto_parallel, row.name
        assert row.ped_parallel <= row.total_loops
        assert "parallelize" in row.actions

    by_name = {r.name: r for r in rows}
    assert "assertion" in by_name["onedim"].actions
    assert "privatize" in by_name["slab2d"].actions
    assert "reduction" in by_name["boast"].actions

    # Aggregate shape: Ped more than doubles the parallel loop count.
    auto_total = sum(r.auto_parallel for r in rows)
    ped_total = sum(r.ped_parallel for r in rows)
    assert ped_total >= 2 * auto_total

    save_artifact("table2.txt", render_table2())
