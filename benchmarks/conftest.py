"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact (table / figure / series)
and asserts its qualitative *shape* before timing, so ``pytest
benchmarks/ --benchmark-only`` doubles as the reproduction run.  The
regenerated artifacts are also written to ``benchmarks/out/`` for
side-by-side comparison with the paper.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def save_artifact(name: str, text: str) -> None:
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / name).write_text(text)
