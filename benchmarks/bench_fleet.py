"""Experiment M6 — fleet serving: connection scale and routed parity.

Two claims the fleet subsystem makes, measured:

1. *Connection scale* — the asyncio transport sustains 500 concurrent
   client connections on one event loop (the threaded front end burns a
   thread per client and tops out far earlier), answering request
   sweeps across all of them with the connection gauge confirming the
   high-water mark.
2. *Routed parity* — a corpus partitioned across a 2-shard fleet by the
   consistent-hash router produces aggregate rollups and per-program
   fingerprints byte-identical to the same corpus on a single host.

Both record into ``benchmarks/out/fleet.json``.
"""

import json
import socket
import time

import pytest

from repro.fleet import AsyncTransport, FleetRouter
from repro.incremental.stats import EngineStats
from repro.interproc import FeatureSet
from repro.pipeline import CorpusRunner
from repro.service import PedClient, PedServer
from repro.workloads.generator import generate_program

from conftest import OUT_DIR, save_artifact

N_CONNECTIONS = 500
SWEEPS = 3
N_PROGRAMS = 12

AGG_NAMES = ("summary", "obstacles", "tiers", "transforms")


def _merge_artifact(section: str, payload: dict) -> None:
    """Accumulate both tests' sections into one ``fleet.json``."""

    out = {}
    path = OUT_DIR / "fleet.json"
    if path.exists():
        try:
            out = json.loads(path.read_text())
        except ValueError:
            out = {}
    out[section] = payload
    save_artifact("fleet.json", json.dumps(out, indent=2) + "\n")


def test_500_concurrent_connections_sustained(benchmark):
    srv = PedServer(max_workers=8)
    transport = AsyncTransport(srv)
    port = transport.start_background()
    conns = []
    try:
        for _ in range(N_CONNECTIONS):
            sock = socket.create_connection(("127.0.0.1", port), timeout=30)
            conns.append((sock, sock.makefile("r", encoding="utf-8")))
        # The gauge ticks as each connection's loop task starts; give
        # the event loop a moment to catch up with the accept burst.
        deadline = time.monotonic() + 30
        while (
            srv.connections.open < N_CONNECTIONS
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert srv.connections.open == N_CONNECTIONS

        def sweep() -> float:
            """One ping across every connection: all pipelined out,
            then every reply read back."""

            t0 = time.perf_counter()
            for i, (sock, _fh) in enumerate(conns):
                sock.sendall(
                    (json.dumps({"id": i, "op": "ping"}) + "\n").encode()
                )
            for i, (_sock, fh) in enumerate(conns):
                reply = json.loads(fh.readline())
                assert reply["ok"] is True and reply["result"]["pong"]
            return time.perf_counter() - t0

        # Sustained: several full sweeps with every connection open.
        sweep_s = [sweep() for _ in range(SWEEPS)]
        assert srv.connections.open == N_CONNECTIONS
        assert srv.connections.peak >= N_CONNECTIONS

        _merge_artifact(
            "connections",
            {
                "concurrent_connections": N_CONNECTIONS,
                "sweeps": SWEEPS,
                "sweep_seconds": sweep_s,
                "pings_per_second": N_CONNECTIONS / min(sweep_s),
                "peak_gauge": srv.connections.peak,
            },
        )
        benchmark.pedantic(sweep, rounds=3, iterations=1, warmup_rounds=0)
    finally:
        for sock, fh in conns:
            try:
                fh.close()
                sock.close()
            except OSError:
                pass
        transport.stop_background()
        srv.close()


def test_routed_corpus_matches_single_host(benchmark):
    programs = [
        (
            f"bench{i:02d}",
            generate_program(
                n_routines=2 + i % 4,
                n_fields=2,
                grid=8 + 4 * (i % 2),
                steps=2 + i % 3,
            ),
        )
        for i in range(N_PROGRAMS)
    ]

    # Single-host reference run.
    runner = CorpusRunner(features=FeatureSet(), stats=EngineStats())
    t0 = time.perf_counter()
    local = runner.submit(programs)
    runner.run(local)
    single_host_s = time.perf_counter() - t0
    local_aggs = {
        name: runner.query(local, name)[0] for name in AGG_NAMES
    }
    local_digests = {
        r["program"]: r["digest"] for r in local.result_records()
    }

    # The same corpus through a 2-shard routed fleet.
    shards, addrs = [], []
    for _ in range(2):
        shard = PedServer(max_workers=4)
        shard_transport = AsyncTransport(shard)
        addrs.append(f"127.0.0.1:{shard_transport.start_background()}")
        shards.append((shard, shard_transport))
    router = FleetRouter(addrs, retries=1)
    rtransport = AsyncTransport(router)
    rport = rtransport.start_background()
    try:
        with PedClient.connect(port=rport) as client:
            t0 = time.perf_counter()
            reply = client.corpus_submit(programs, wait=True)
            fleet_s = time.perf_counter() - t0
            assert reply["complete"] and reply["errors"] == 0
            assert len(reply["shards"]) == 2
            job = reply["job"]

            fleet_aggs = {
                name: client.corpus_query(job, name)["value"]
                for name in AGG_NAMES
            }
            records = client.request(
                "corpus.results", job=job, wait=120
            )["records"]
            fleet_digests = {r["program"]: r["digest"] for r in records}

            for name in AGG_NAMES:
                assert json.dumps(
                    fleet_aggs[name], sort_keys=True
                ) == json.dumps(local_aggs[name], sort_keys=True), name
            assert fleet_digests == local_digests

            _merge_artifact(
                "routed_corpus",
                {
                    "programs": N_PROGRAMS,
                    "shards": 2,
                    "single_host_seconds": single_host_s,
                    "fleet_seconds": fleet_s,
                    "aggregates_identical": True,
                    "fingerprints_identical": True,
                    "summary": fleet_aggs["summary"],
                    "fingerprints": fleet_digests,
                },
            )

            def routed_query():
                return client.corpus_query(job, "summary")["value"]

            benchmark.pedantic(
                routed_query, rounds=5, iterations=1, warmup_rounds=1
            )
    finally:
        rtransport.stop_background()
        router.close()
        for shard, shard_transport in shards:
            shard_transport.stop_background()
            shard.close()
