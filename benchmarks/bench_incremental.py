"""Experiment M2 — interactive responsiveness.

Ped reanalyzes after every edit / assertion / transformation; an
interactive tool lives or dies on that latency.  This bench measures the
session-level reanalysis cost on the largest suite program (spec77) and
the incremental cost of the individual interactions a user performs:

* full reanalysis after an edit must complete at interactive latency;
* a dependence-marking interaction (no reanalysis, only verdict refresh)
  must be far cheaper than a full reanalysis.
"""

import pytest

from repro.editor import CommandInterpreter, PedSession
from repro.workloads import SUITE


@pytest.fixture(scope="module")
def spec77_session():
    return PedSession(SUITE["spec77"].source)


def test_full_reanalysis(benchmark, spec77_session):
    benchmark.pedantic(
        spec77_session.reanalyze, rounds=3, iterations=1, warmup_rounds=0
    )


def test_session_open(benchmark):
    session = benchmark.pedantic(
        PedSession,
        args=(SUITE["spec77"].source,),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    assert session.analysis.loop_count() > 20


def test_marking_interaction(benchmark):
    """Marking a dependence refreshes verdicts without reanalysis."""

    from repro.interproc import FeatureSet

    # Array kill off so the wrk dependences stay pending (markable).
    session = PedSession(
        SUITE["arc3d"].source, features=FeatureSet(array_kill=False)
    )
    session.select_unit("filtall")
    session.select_loop(0)
    deps = [d for d in session.dependences() if d.marking == "pending"]
    assert deps
    dep = deps[0]

    def mark_and_unmark():
        session.mark_dependence(dep.id, "accepted")
        session.mark_dependence(dep.id, "pending")

    benchmark(mark_and_unmark)


def test_assertion_interaction(benchmark):
    """An assertion triggers one full reanalysis; still interactive."""

    session = PedSession(SUITE["onedim"].source)
    session.select_unit("deposit")

    def assert_and_undo():
        session.add_assertion("distinct map")
        session.undo()

    benchmark.pedantic(assert_and_undo, rounds=3, iterations=1, warmup_rounds=0)


def test_edit_reanalysis(benchmark):
    """An in-place source edit reparses + reanalyzes the program."""

    session = PedSession(SUITE["pneoss"].source)
    lines = session.source.splitlines()
    target = next(
        i for i, text in enumerate(lines, start=1) if "gam(i) = 1.4" in text
    )

    def edit_back_and_forth():
        session.edit(target, target, "         gam(i) = 1.5")
        session.edit(target, target, "         gam(i) = 1.4")

    benchmark.pedantic(
        edit_back_and_forth, rounds=3, iterations=1, warmup_rounds=0
    )
