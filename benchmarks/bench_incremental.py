"""Experiment M2 — interactive responsiveness.

Ped reanalyzes after every edit / assertion / transformation; an
interactive tool lives or dies on that latency.  This bench measures the
session-level reanalysis cost on the largest suite program (spec77) and
the incremental cost of the individual interactions a user performs:

* full (cold) reanalysis after an edit must complete at interactive
  latency — the engine caches are cleared inside the timed region so
  this really measures the from-scratch pipeline;
* a single-procedure edit must reanalyze in roughly per-unit time, far
  below the full-program cost (the incremental engine's headline claim,
  asserted here and recorded to ``benchmarks/out/incremental.json``);
* a dependence-marking interaction (no reanalysis, only verdict refresh)
  must be far cheaper still — and must perform *no* reparse at all;
* reopening a previously analyzed program with ``--cache-dir`` must
  start warm from the persistent store, far below the cold-open cost
  (``benchmarks/out/warmstart.json``);
* per-unit fan-out with ``--jobs`` must stay fingerprint-identical to
  serial, with the wall-clock comparison recorded to
  ``benchmarks/out/parallel.json`` (the speedup itself is only asserted
  when the machine actually has multiple cores);
* the shared pair-test memo and per-span warm starts must pay off
  across sessions *and* across programs: a warm-memo reopen beats the
  cold open by 1.5x or more, and a cold open of a *sibling* program
  (never seen, but sharing half its routines) gets nonzero span-reuse
  and shared-memo hit rates (``benchmarks/out/crossreuse.json``);
* the reuse must also cross *process* boundaries: after a separate
  process populates a shared ``--cache-dir``, this process's reopen
  beats its own cold open and absorbs the sibling process's memo
  deltas through the lease-coordinated singleton record
  (``benchmarks/out/multiprocess.json``).
"""

import json
import os
import tempfile
import time

import pytest

from repro.editor import CommandInterpreter, PedSession
from repro.workloads import SUITE

from conftest import save_artifact


@pytest.fixture(scope="module")
def spec77_session():
    return PedSession(SUITE["spec77"].source)


def _best_of(fn, rounds=3):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_full_reanalysis(benchmark, spec77_session):
    """Cold reanalysis: engine caches dropped inside the timed region."""

    def cold_reanalyze():
        spec77_session.engine.clear()
        spec77_session.reanalyze()

    benchmark.pedantic(cold_reanalyze, rounds=3, iterations=1, warmup_rounds=0)


def test_session_open(benchmark):
    session = benchmark.pedantic(
        PedSession,
        args=(SUITE["spec77"].source,),
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    assert session.analysis.loop_count() > 20


def test_single_unit_edit_reanalysis(benchmark):
    """An edit confined to one procedure of spec77 reanalyzes at per-unit
    cost: the engine reparses exactly one unit and the latency sits well
    below a full reanalysis.  Emits machine-readable numbers for the
    paper-style responsiveness comparison."""

    session = PedSession(SUITE["spec77"].source)
    lines = session.source.splitlines()
    target = next(
        i for i, text in enumerate(lines, start=1) if "ekin = 0.5" in text
    )
    variants = [
        lines[target - 1].replace("0.5", "0.25"),
        lines[target - 1],
    ]
    state = {"flip": 0}

    def edit_one_unit():
        session.edit(target, target, variants[state["flip"]])
        state["flip"] ^= 1

    parse_misses_before = session.engine.stats.stage("parse").misses
    incremental_s = _best_of(edit_one_unit, rounds=4)
    parse_misses = session.engine.stats.stage("parse").misses - parse_misses_before
    # The first edit reparses exactly the one edited unit; toggling back
    # revisits an already-seen span, so every later edit is a pure cache
    # hit — no reparse at all.
    assert parse_misses == 1, "an edit must reparse at most the edited unit"

    def cold_reanalyze():
        session.engine.clear()
        session.reanalyze()

    full_s = _best_of(cold_reanalyze, rounds=3)
    assert incremental_s < full_s * 0.6, (
        f"single-unit edit ({incremental_s:.4f}s) is not measurably faster "
        f"than full reanalysis ({full_s:.4f}s)"
    )

    save_artifact(
        "incremental.json",
        json.dumps(
            {
                "program": "spec77",
                "units": len(session.analysis.units),
                "full_reanalysis_s": full_s,
                "single_unit_edit_s": incremental_s,
                "speedup": full_s / incremental_s,
                "engine_stats": session.engine.stats.snapshot(),
            },
            indent=2,
        )
        + "\n",
    )
    benchmark.pedantic(edit_one_unit, rounds=3, iterations=1, warmup_rounds=0)


def test_marking_interaction(benchmark):
    """Marking a dependence refreshes verdicts without reanalysis."""

    from repro.interproc import FeatureSet

    # Array kill off so the wrk dependences stay pending (markable).
    session = PedSession(
        SUITE["arc3d"].source, features=FeatureSet(array_kill=False)
    )
    session.select_unit("filtall")
    session.select_loop(0)
    deps = [d for d in session.dependences() if d.marking == "pending"]
    assert deps
    dep = deps[0]

    def mark_and_unmark():
        session.mark_dependence(dep.id, "accepted")
        session.mark_dependence(dep.id, "pending")

    parse_runs_before = session.engine.stats.stage("parse").runs
    benchmark(mark_and_unmark)
    # The acceptance bar: a marking/verdict refresh performs no reparse —
    # in fact it never enters the engine at all.
    assert session.engine.stats.stage("parse").runs == parse_runs_before


def test_assertion_interaction(benchmark):
    """An assertion triggers a reanalysis — through the engine's caches,
    with no reparse: only the asserted unit's dependence stage reruns."""

    session = PedSession(SUITE["onedim"].source)
    session.select_unit("deposit")

    def assert_and_undo():
        session.add_assertion("distinct map")
        session.undo()

    parse_misses_before = session.engine.stats.stage("parse").misses
    benchmark.pedantic(assert_and_undo, rounds=3, iterations=1, warmup_rounds=0)
    assert session.engine.stats.stage("parse").misses == parse_misses_before


def test_edit_reanalysis(benchmark):
    """An in-place source edit reparses + reanalyzes only its unit."""

    session = PedSession(SUITE["pneoss"].source)
    lines = session.source.splitlines()
    target = next(
        i for i, text in enumerate(lines, start=1) if "gam(i) = 1.4" in text
    )

    def edit_back_and_forth():
        session.edit(target, target, "         gam(i) = 1.5")
        session.edit(target, target, "         gam(i) = 1.4")

    benchmark.pedantic(
        edit_back_and_forth, rounds=3, iterations=1, warmup_rounds=0
    )


def test_warm_start_reopen(benchmark):
    """Reopening spec77 with a persistent cache starts warm: the whole
    cache state loads from one content-addressed record and the analysis
    is a pure cache walk — fingerprint-identical to cold, and far
    faster.  Emits ``benchmarks/out/warmstart.json``."""

    from repro.incremental import AnalysisEngine, program_fingerprint
    from repro.service import build_engine

    source = SUITE["spec77"].source
    cold_fp = program_fingerprint(AnalysisEngine().analyze(source)[1])

    with tempfile.TemporaryDirectory() as cache_dir:

        def cold_open():
            engine = build_engine(cache_dir=cache_dir)
            engine.analyze(source)
            return engine

        t0 = time.perf_counter()
        cold_open()  # populates the store (first ever open)
        cold_s = time.perf_counter() - t0

        warm_engines = []

        def warm_open():
            engine = build_engine(cache_dir=cache_dir)
            engine.analyze(source)
            warm_engines.append(engine)

        warm_s = _best_of(warm_open, rounds=3)
        warm = warm_engines[-1]
        _, pa = warm.analyze(source)
        assert program_fingerprint(pa) == cold_fp
        assert warm.stats.counter("disk.warm_start") >= 1
        assert warm.stats.stage("parse").misses == 0
        assert warm_s < cold_s, (
            f"warm reopen ({warm_s:.4f}s) must beat the cold open "
            f"({cold_s:.4f}s)"
        )

        save_artifact(
            "warmstart.json",
            json.dumps(
                {
                    "program": "spec77",
                    "cold_open_s": cold_s,
                    "warm_reopen_s": warm_s,
                    "speedup": cold_s / warm_s,
                    "fingerprint_identical": True,
                    "engine_stats": warm.stats.snapshot(),
                },
                indent=2,
            )
            + "\n",
        )
        benchmark.pedantic(warm_open, rounds=3, iterations=1, warmup_rounds=0)


def test_parallel_vs_serial_analysis(benchmark):
    """Cold spec77 analysis, serial vs ``--jobs 2``: structurally
    identical results, with the wall-clock numbers recorded to
    ``benchmarks/out/parallel.json``.  The speedup is asserted only on
    genuinely multi-core machines — on a single core the process pool
    can only add overhead, which the artifact records honestly."""

    from repro.incremental import AnalysisEngine, program_fingerprint
    from repro.service import build_engine

    source = SUITE["spec77"].source
    serial = AnalysisEngine()

    def cold_serial():
        serial.clear()
        serial.analyze(source)

    serial_s = _best_of(cold_serial, rounds=3)
    serial_fp = program_fingerprint(serial.analyze(source)[1])

    parallel = build_engine(jobs=2)
    try:
        parallel.analyze(source)  # first use spawns the worker processes

        def cold_parallel():
            parallel.clear()
            parallel.analyze(source)

        parallel_s = _best_of(cold_parallel, rounds=3)
        _, pa = parallel.analyze(source)
        assert program_fingerprint(pa) == serial_fp
        assert parallel.stats.counter("pool.tasks") > 0
        utilization = parallel.stats.pool_utilization()
    finally:
        parallel.close()

    cores = os.cpu_count() or 1
    if cores >= 2:
        assert parallel_s < serial_s, (
            f"on {cores} cores, parallel cold analysis ({parallel_s:.4f}s) "
            f"must beat serial ({serial_s:.4f}s)"
        )

    save_artifact(
        "parallel.json",
        json.dumps(
            {
                "program": "spec77",
                "jobs": 2,
                "cpu_cores": cores,
                "serial_cold_s": serial_s,
                "parallel_cold_s": parallel_s,
                "speedup": serial_s / parallel_s,
                "pool_utilization": utilization,
                "fingerprint_identical": True,
            },
            indent=2,
        )
        + "\n",
    )
    benchmark.pedantic(cold_serial, rounds=1, iterations=1, warmup_rounds=0)


def test_cross_program_warm_reuse(benchmark):
    """Cross-session and cross-program reuse on a 40-routine workload:

    * warm-memo reopen of the same program is >= 1.5x faster than the
      cold open that populated the store;
    * a cold open of a *sibling* program — never analyzed, but sharing
      half its routines with the base — reuses spans, unit summaries
      and shared-memo verdicts on a cold program key, with fingerprints
      identical to a from-scratch analysis.

    Emits ``benchmarks/out/crossreuse.json``.
    """

    from repro.incremental import AnalysisEngine, program_fingerprint
    from repro.service import build_engine
    from repro.workloads.generator import generate_program

    base = generate_program(n_routines=40)
    # The sibling keeps the first half of the routines byte-identical
    # (same spans, same line layout) and widens the stencil in the rest.
    marker = "(x(i+1) - x(i-1))"
    parts = base.split("      subroutine upd")
    out = [parts[0]]
    for p in parts[1:]:
        if int(p.split("(")[0]) >= 20:
            p = p.replace(marker, "(x(i+2) - x(i-2))")
        out.append(p)
    sibling = "      subroutine upd".join(out)
    assert sibling != base

    with tempfile.TemporaryDirectory() as cache_dir:

        def cold_open():
            engine = build_engine(cache_dir=cache_dir)
            engine.analyze(base)
            return engine

        t0 = time.perf_counter()
        first = cold_open()  # populates spans, summaries and the memo
        cold_s = time.perf_counter() - t0
        assert first.stats.counter("memo.persisted_entries") > 0

        warm_engines = []

        def warm_open():
            engine = build_engine(cache_dir=cache_dir)
            engine.analyze(base)
            warm_engines.append(engine)

        warm_s = _best_of(warm_open, rounds=3)
        assert warm_engines[-1].stats.counter("disk.warm_start") >= 1
        assert warm_s * 1.5 <= cold_s, (
            f"warm-memo reopen ({warm_s:.4f}s) must be >= 1.5x faster "
            f"than the cold open ({cold_s:.4f}s)"
        )

        t0 = time.perf_counter()
        second = build_engine(cache_dir=cache_dir)
        _, pa = second.analyze(sibling)
        sibling_s = time.perf_counter() - t0
        _, pa_scratch = AnalysisEngine().analyze(sibling)
        assert program_fingerprint(pa) == program_fingerprint(pa_scratch)
        counters = second.stats.counters
        # Cold program key — yet spans, summaries and memo entries warm.
        assert "disk.warm_start" not in counters
        assert counters["disk.span_warm"] > 0
        assert counters["disk.usum_hit"] > 0
        assert counters["memo.shared_hits"] > 0
        assert second.stats.shared_memo_hit_rate() > 0

        save_artifact(
            "crossreuse.json",
            json.dumps(
                {
                    "routines": 40,
                    "cold_open_s": cold_s,
                    "warm_memo_reopen_s": warm_s,
                    "warm_speedup": cold_s / warm_s,
                    "sibling_cold_key_open_s": sibling_s,
                    "sibling_span_warm": counters["disk.span_warm"],
                    "sibling_usum_hits": counters["disk.usum_hit"],
                    "sibling_shared_memo_hits": counters[
                        "memo.shared_hits"
                    ],
                    "sibling_shared_memo_hit_rate": (
                        second.stats.shared_memo_hit_rate()
                    ),
                    "fingerprint_identical": True,
                    "engine_stats": second.stats.snapshot(),
                },
                indent=2,
            )
            + "\n",
        )
        benchmark.pedantic(warm_open, rounds=3, iterations=1, warmup_rounds=0)


def test_multiprocess_warm_reopen(benchmark):
    """Cross-process warm start: another *process* populates the shared
    cache dir; this process's reopen must beat its own cold open and
    absorb the sibling's memo deltas (nonzero memo-delta hit rate).
    Emits ``benchmarks/out/multiprocess.json``."""

    import subprocess
    import sys
    from pathlib import Path

    from repro.incremental import program_fingerprint
    from repro.service import build_engine
    from repro.workloads.generator import generate_program

    n_routines = 40
    source = generate_program(n_routines=n_routines)

    with tempfile.TemporaryDirectory() as scratch:
        # Process B's cold baseline runs against a throwaway store so
        # the comparison is reopen-vs-cold within *this* process.
        t0 = time.perf_counter()
        cold = build_engine(cache_dir=str(Path(scratch) / "own"))
        _, pa_cold = cold.analyze(source)
        cold_s = time.perf_counter() - t0
        cold.close()

        # Process A (a real subprocess) populates the shared store.
        shared = str(Path(scratch) / "shared")
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        writer = (
            "import sys\n"
            "from repro.service import build_engine\n"
            "from repro.workloads.generator import generate_program\n"
            "engine = build_engine(cache_dir=sys.argv[1])\n"
            f"engine.analyze(generate_program(n_routines={n_routines}))\n"
            "engine.close()\n"
        )
        subprocess.run(
            [sys.executable, "-c", writer, shared],
            check=True,
            env=env,
            timeout=600,
        )

        warm_engines = []

        def warm_reopen():
            engine = build_engine(cache_dir=shared)
            engine.analyze(source)
            warm_engines.append(engine)

        warm_s = _best_of(warm_reopen, rounds=3)
        warm = warm_engines[-1]
        _, pa_warm = warm.analyze(source)
        assert program_fingerprint(pa_warm) == program_fingerprint(pa_cold)
        counters = warm.stats.counters
        # This process never populated the store, yet starts warm and
        # absorbs the sibling process's memo deltas.
        assert counters.get("disk.warm_start", 0) >= 1
        assert counters.get("memo.delta_absorbed", 0) > 0
        delta_hit_rate = counters["memo.delta_absorbed"] / max(
            counters.get("memo.persisted_entries", 0), 1
        )
        assert warm_s < cold_s, (
            f"cross-process warm reopen ({warm_s:.4f}s) must beat the "
            f"cold open ({cold_s:.4f}s)"
        )

        save_artifact(
            "multiprocess.json",
            json.dumps(
                {
                    "routines": n_routines,
                    "cold_open_s": cold_s,
                    "cross_process_warm_reopen_s": warm_s,
                    "speedup": cold_s / warm_s,
                    "memo_delta_absorbed": counters["memo.delta_absorbed"],
                    "memo_persisted_entries": counters.get(
                        "memo.persisted_entries", 0
                    ),
                    "memo_delta_hit_rate": delta_hit_rate,
                    "fingerprint_identical": True,
                },
                indent=2,
            )
            + "\n",
        )
        benchmark.pedantic(
            warm_reopen, rounds=3, iterations=1, warmup_rounds=0
        )
