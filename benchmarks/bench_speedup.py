"""Experiment S1 — simulated speedups and the granularity crossover.

Regenerates (a) the per-program simulated speedup series after each Ped
session and (b) the spec77 granularity comparison: outer-loop
(interprocedural, sections-enabled) parallelism versus naive inner-loop
parallelism.

Shapes that must hold (the paper's performance narrative):

* outer-loop spec77 speeds up monotonically with processors and beats
  5× the inner-loop variant at 8 processors — inner loops "with
  insufficient granularity" lose to fork/join overhead;
* inner-loop parallelism is a *slowdown* (speedup < 1) on this machine
  model, matching the "little or no improvement" reports;
* all parallelized programs are at least no slower at 8 processors than
  at 1 (no pathological regression from the transformation).
"""

import pytest

from repro.evaluation.speedup import granularity_comparison, speedup_table

from conftest import save_artifact


def test_granularity_crossover(benchmark):
    result = benchmark.pedantic(
        granularity_comparison, rounds=1, iterations=1, warmup_rounds=0
    )
    assert result["outer"] > 2.0
    assert result["inner"] < 1.0
    assert result["outer"] > 5 * result["inner"]
    save_artifact(
        "speedup_granularity.txt",
        f"outer-loop parallelism: {result['outer']:.2f}x\n"
        f"inner-loop parallelism: {result['inner']:.2f}x\n",
    )


def test_speedup_curves(benchmark):
    rows = benchmark.pedantic(
        speedup_table,
        kwargs={"names": ["spec77", "arc3d", "nxsns"], "procs": (1, 2, 4, 8)},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    lines = []
    for row in rows:
        speeds = dict(row.speedups)
        # Monotone non-decreasing with processors (fork/join amortised).
        values = [s for _, s in row.speedups]
        assert all(b >= a * 0.98 for a, b in zip(values, values[1:])), row.name
        # The largest program benefits most (granularity).
        lines.append(
            f"{row.name:<8} " + "  ".join(f"p={p}:{s:.2f}" for p, s in row.speedups)
        )
    by_name = {r.name: dict(r.speedups) for r in rows}
    assert by_name["spec77"][8] > by_name["nxsns"][8]
    save_artifact("speedup_curves.txt", "\n".join(lines) + "\n")
