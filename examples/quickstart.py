#!/usr/bin/env python3
"""Quickstart: open a Ped session, inspect dependences, parallelize.

Run:  python examples/quickstart.py
"""

from repro.core import open_session
from repro.editor import CommandInterpreter, render_window

SOURCE = """      program quick
      integer n
      parameter (n = 200)
      real a(n), b(n), s
      s = 0.0
      do i = 1, n
         a(i) = 0.5 * i
      end do
      do i = 2, n
         b(i) = a(i) - a(i-1)
         s = s + b(i)
      end do
      do i = 2, n
         a(i) = a(i-1) + b(i)
      end do
      write (6, *) s
      end
"""


def main() -> None:
    session = open_session(SOURCE)
    ped = CommandInterpreter(session)

    print("The loops of the program, with Ped's verdicts:")
    print(ped.execute("loops"))
    print()

    print("Select the middle loop and look at its dependences:")
    print(ped.execute("select 1"))
    print(ped.execute("deps"))
    print()

    print("Variable classification for the selected loop:")
    print(ped.execute("vars"))
    print()

    print("Power steering: diagnose, then apply, parallelization:")
    print(ped.execute("advice parallelize"))
    print(ped.execute("apply parallelize"))
    print()

    print("The third loop is a true recurrence — Ped refuses:")
    print(ped.execute("select 2"))
    print(ped.execute("advice parallelize"))
    print()

    print("The full Ped window (Figure 1 layout):")
    print(render_window(session))
    print()

    print("Transformed source:")
    print(session.source)


if __name__ == "__main__":
    main()
