#!/usr/bin/env python3
"""Performance-guided navigation and the granularity experiment.

The experiences paper's users asked for "improved program navigation
based on performance estimation": show me the expensive loops first.
This example:

1. profiles spec77 with the reference interpreter (the gprof/Forge
   substitute) and prints the hottest loops;
2. uses the static estimator to rank loops and drive the 'next' command;
3. reruns the granularity comparison — outer-loop (interprocedural)
   parallelism versus naive inner-loop parallelism — and prints the
   simulated speedup curves for both.

Run:  python examples/performance_navigation.py
"""

from repro.editor import CommandInterpreter, PedSession
from repro.evaluation.speedup import granularity_comparison
from repro.fortran import DoLoop, parse_and_bind, walk_statements
from repro.perf import profile_program
from repro.perf.simulate import speedup_curve
from repro.workloads import SUITE


def main() -> None:
    prog = SUITE["spec77"]
    sf = parse_and_bind(prog.source)

    print("== loop-level profile (interpreter run) ==")
    profile = profile_program(sf)
    print(f"{'unit':<10} {'line':>5} {'var':>4} {'iterations':>11} {'avg trip':>9}")
    for lp in profile.hottest_loops(8):
        print(
            f"{lp.unit:<10} {lp.line:>5} {lp.var:>4} "
            f"{lp.iterations:>11} {lp.avg_trip:>9.1f}"
        )
    print()

    print("== static performance ranking (the 'next' command) ==")
    session = PedSession(prog.source)
    ped = CommandInterpreter(session)
    print(ped.execute("ranking"))
    print()
    print("'next' jumps to the hottest unparallelized loop:")
    print(ped.execute("next"))
    print()

    print("== granularity: outer-loop vs inner-loop parallelism ==")
    comparison = granularity_comparison(procs=8)
    print(f"outer (Ped, sections → column loop DOALL): {comparison['outer']:.2f}x")
    print(f"inner (naive per-callee loops DOALL):       {comparison['inner']:.2f}x")
    print()

    print("== speedup curves ==")
    outer_session = PedSession(prog.source)
    CommandInterpreter(outer_session).run_script(prog.script)
    print("outer-loop parallel spec77:",
          [(p, round(s, 2)) for p, s in speedup_curve(outer_session.sf)])

    inner_sf = parse_and_bind(prog.source)
    for unit in inner_sf.units:
        if unit.name not in ("spec77", "gloop"):
            for st in walk_statements(unit.body):
                if isinstance(st, DoLoop):
                    st.parallel = True
    print("inner-loop parallel spec77:",
          [(p, round(s, 2)) for p, s in speedup_curve(inner_sf)])


if __name__ == "__main__":
    main()
