#!/usr/bin/env python3
"""Replay the workshop: parallelize every suite program with Ped.

For each Table 1 program this example:

1. runs the naive automatic baseline (dependence testing only);
2. replays the program's scripted Ped session (the user actions the
   paper reports: assertions, reclassification, transformations);
3. verifies the transformed program still computes the same answer even
   with DOALL iterations executed in reverse order;
4. prints the before/after loop counts — the reproduction of Table 2.

Run:  python examples/parallelize_suite.py
"""

from repro.editor import CommandInterpreter, PedSession
from repro.fortran import parse_and_bind
from repro.interproc import FeatureSet, analyze_program
from repro.perf import Interpreter
from repro.workloads import SUITE


def main() -> None:
    header = f"{'program':<10} {'auto':>6} {'Ped':>6} {'loops':>6}  user actions"
    print(header)
    print("-" * len(header))
    for name, prog in SUITE.items():
        sf = parse_and_bind(prog.source)
        reference = Interpreter(sf).run()

        baseline = analyze_program(sf, FeatureSet.minimal())
        auto = baseline.parallel_loop_count()
        total = baseline.loop_count()

        session = PedSession(prog.source)
        ped = CommandInterpreter(session)
        outputs = ped.run_script(prog.script)
        errors = [o for o in outputs if o.startswith("error:")]
        if errors:
            raise SystemExit(f"{name}: session error: {errors[0]}")

        ped_parallel = sum(
            len(ua.parallel_loops()) for ua in session.analysis.units.values()
        )

        transformed = Interpreter(session.sf, doall_order="reversed").run()
        ok = "ok" if transformed == reference else "RESULTS CHANGED!"

        actions = sorted(
            {
                line.split()[0] if not line.startswith("apply") else line.split()[1]
                for line in prog.script
                if line.startswith(("apply", "assert", "mark", "classify"))
            }
        )
        print(
            f"{name:<10} {auto:>6} {ped_parallel:>6} {total:>6}  "
            f"{', '.join(actions)}  [{ok}]"
        )
    print()
    print("auto = loops parallelizable by dependence testing alone")
    print("Ped  = loops parallelizable after the scripted interactive session")


if __name__ == "__main__":
    main()
