#!/usr/bin/env python3
"""A full interactive walkthrough: the arc3d array-kill story.

This example narrates the exact scenario the experiences paper tells
about arc3d — "an array is killed inside a procedure invoked in a loop,
so interprocedural array kill analysis is required" — three ways:

1. with a *naive* feature set the plane loop is hopelessly serial;
2. with full interprocedural analysis Ped shows wrk as privatizable and
   the loop parallelizes;
3. the user-driven alternative: with array kill disabled, the user
   inspects the pending wrk dependences, rejects them after reasoning
   about the callee (dependence marking), and parallelizes anyway.

Run:  python examples/interactive_arc3d.py
"""

from repro.editor import CommandInterpreter, PedSession
from repro.interproc import FeatureSet
from repro.perf import Interpreter
from repro.fortran import parse_and_bind
from repro.workloads import SUITE


def banner(text: str) -> None:
    print()
    print("#" * 72)
    print("#", text)
    print("#" * 72)


def main() -> None:
    prog = SUITE["arc3d"]
    reference = Interpreter(parse_and_bind(prog.source)).run()
    print("reference output:", reference)

    banner("1. Naive tool: dependence testing only")
    naive = PedSession(prog.source, features=FeatureSet.minimal())
    ped = CommandInterpreter(naive)
    ped.execute("unit filtall")
    ped.execute("select 0")
    print(ped.execute("loops"))
    print()
    print("dependence pane (conservative call handling):")
    print(ped.execute("deps"))

    banner("2. Full Ped analysis: sections + interprocedural array kill")
    full = PedSession(prog.source)
    ped = CommandInterpreter(full)
    ped.execute("unit filtall")
    ped.execute("select 0")
    print(ped.execute("loops"))
    print()
    print("variable pane — wrk is private (array kill analysis):")
    print(ped.execute("vars"))
    print()
    print(ped.execute("advice parallelize"))
    print(ped.execute("apply parallelize"))
    out = Interpreter(full.sf, doall_order="shuffled").run()
    print("shuffled-order DOALL output:", out, "(matches)" if out == reference else "(MISMATCH)")

    banner("3. User-driven: array kill off, reject the wrk dependences")
    manual = PedSession(prog.source, features=FeatureSet(array_kill=False))
    ped = CommandInterpreter(manual)
    ped.execute("unit filtall")
    ped.execute("select 0")
    print("pending dependences on the scratch array:")
    print(ped.execute("filter var=wrk"))
    print(ped.execute("deps"))
    manual.select_unit("filtall")
    manual.select_loop(0)
    for dep in list(manual.dependences()):
        if dep.var == "wrk" and dep.marking == "pending":
            print(ped.execute(f"mark {dep.id} rejected"))
    print()
    print(ped.execute("advice parallelize"))
    print(ped.execute("apply parallelize"))
    out = Interpreter(manual.sf, doall_order="reversed").run()
    print("reversed-order DOALL output:", out, "(matches)" if out == reference else "(MISMATCH)")


if __name__ == "__main__":
    main()
