#!/usr/bin/env python3
"""User assertions: the index-array story (onedim) and symbolic bounds.

"Three programs contained index arrays in subscript expressions that
prevented parallelization" and users "requested higher-level assertions".
This example shows both assertion flavours end to end:

1. ``assert distinct map`` lets the tester look *through* a permutation
   index array, removing the scatter-loop dependences (onedim);
2. ``assert nn == 50`` supplies a symbolic bound's value, resolving the
   boundary-element dependences in `interior` when interprocedural
   constants are unavailable.

Run:  python examples/index_array_assertions.py
"""

from repro.editor import CommandInterpreter, PedSession
from repro.fortran import parse_and_bind
from repro.interproc import FeatureSet
from repro.perf import Interpreter
from repro.workloads import SUITE


def main() -> None:
    # ---- 1. permutation index array --------------------------------------
    prog = SUITE["onedim"]
    reference = Interpreter(parse_and_bind(prog.source)).run()
    session = PedSession(prog.source)
    ped = CommandInterpreter(session)
    ped.execute("unit deposit")
    ped.execute("select 0")

    print("== onedim: scatter through map(i) ==")
    print("before the assertion:")
    print(ped.execute("deps"))
    print(ped.execute("advice parallelize"))
    print()
    print(ped.execute("assert distinct map"))
    print("after the assertion:")
    print(ped.execute("deps"))
    print(ped.execute("apply parallelize"))
    out = Interpreter(session.sf, doall_order="reversed").run()
    assert out == reference, (out, reference)
    print("reversed-order DOALL matches the reference output:", out)
    print()

    # ---- 2. symbolic bound value ------------------------------------------
    prog = SUITE["interior"]
    reference = Interpreter(parse_and_bind(prog.source)).run()
    # Disable interprocedural constants so the bound is truly symbolic.
    session = PedSession(prog.source, features=FeatureSet(ip_constants=False))
    ped = CommandInterpreter(session)
    ped.execute("unit step")
    ped.execute("select 0")

    print("== interior: symbolic bound nn ==")
    print("without the value of nn:")
    print(ped.execute("advice parallelize"))
    print()
    print(ped.execute("assert nn == 50"))
    print("with 'assert nn == 50':")
    print(ped.execute("advice parallelize"))
    print(ped.execute("apply parallelize"))
    out = Interpreter(session.sf, doall_order="shuffled").run()
    assert out == reference, (out, reference)
    print("shuffled-order DOALL matches the reference output:", out)


if __name__ == "__main__":
    main()
