#!/usr/bin/env python3
"""A tour of the editor's supporting tools on one program.

Demonstrates the features around the core parallelization loop:

* the Composition Editor (cross-procedure checking) catching a bug;
* loop-level profiling and the static performance estimate;
* dependence navigation (goto) and view filtering;
* undo/redo across a transformation.

Run:  python examples/tool_tour.py
"""

from repro.editor import CommandInterpreter, PedSession
from repro.workloads import SUITE

BUGGY = """      program buggy
      real v(10)
      x = 1.0
      call scalev(v, 10, 2)
      call scalev(v, 10)
      call scalev(x, 10, 2.0)
      end

      subroutine scalev(a, n, factor)
      integer n
      real a(10), factor
      do i = 1, n
         a(i) = a(i) * factor
      end do
      return
      end
"""


def banner(text):
    print()
    print("=" * 70)
    print(text)
    print("=" * 70)


def main() -> None:
    banner("Composition Editor: cross-procedure checking on a buggy program")
    ped = CommandInterpreter(PedSession(BUGGY))
    print(ped.execute("check"))

    banner("Profiling and performance estimation on spec77")
    session = PedSession(SUITE["spec77"].source)
    ped = CommandInterpreter(session)
    print("loop-level profile (interpreter run):")
    print(ped.execute("profile"))
    print()
    ped.execute("unit gloop")
    ped.execute("select 0")
    print("static estimate for the gloop column loop:")
    print(ped.execute("estimate"))

    banner("Dependence navigation and filtering on arc3d")
    from repro.interproc import FeatureSet

    session = PedSession(
        SUITE["arc3d"].source, features=FeatureSet(array_kill=False)
    )
    ped = CommandInterpreter(session)
    ped.execute("unit filtall")
    ped.execute("select 0")
    print("only the pending scratch-array dependences:")
    print(ped.execute("filter var=wrk marking=pending"))
    print(ped.execute("deps"))
    print()
    deps_out = ped.execute("deps")
    dep_id = int(deps_out.split("#")[1].split()[0])
    print(f"navigate to dependence #{dep_id}:")
    print(ped.execute(f"goto {dep_id}"))

    banner("Undo / redo across a transformation")
    session = PedSession(SUITE["pneoss"].source)
    ped = CommandInterpreter(session)
    ped.execute("unit eos")
    ped.execute("select 0")
    print(ped.execute("apply parallelize"))
    had_doall = "c$par doall" in session.source
    print("doall in source:", had_doall)
    print(ped.execute("undo"))
    print("doall after undo:", "c$par doall" in session.source)
    print(ped.execute("redo"))
    print("doall after redo:", "c$par doall" in session.source)


if __name__ == "__main__":
    main()
